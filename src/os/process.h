/**
 * A user process in the OS model: a page table plus a simple untrusted
 * virtual-address allocator. Enclaves live inside a process's address
 * space at the author-specified ELRANGE.
 */
#pragma once

#include <cstdint>

#include "hw/page_table.h"
#include "hw/types.h"

namespace nesgx::os {

using Pid = std::uint32_t;

class Process {
  public:
    explicit Process(Pid pid) : pid_(pid) {}

    Pid pid() const { return pid_; }

    hw::PageTable& pageTable() { return pageTable_; }
    const hw::PageTable& pageTable() const { return pageTable_; }

    /** Reserves `pages` pages of untrusted virtual address space. */
    hw::Vaddr reserveUntrusted(std::uint64_t pages)
    {
        hw::Vaddr va = untrustedBrk_;
        untrustedBrk_ += pages * hw::kPageSize;
        return va;
    }

  private:
    Pid pid_;
    hw::PageTable pageTable_;
    // Untrusted heap starts well below typical ELRANGE bases.
    hw::Vaddr untrustedBrk_ = 0x0000'1000'0000ull;
};

}  // namespace nesgx::os
