/**
 * The serving trust path: NEREPORT-based tenant onboarding evidence
 * (paper §IV-E consumed end-to-end; flow mirrors the hostverify pattern
 * of open-enclave-style SDKs).
 *
 * A tenant inner enclave proves, in one evidence blob, that
 *   (1) it is the expected code (MRENCLAVE) signed by the expected
 *       author (MRSIGNER),
 *   (2) it is nested inside the expected gateway outer at the exact
 *       chain depth the serving topology implies (a depth-2 instance of
 *       the same code cannot impersonate a depth-3 CVM tenant),
 *   (3) it saw the verifier's fresh nonce (reportData[0..31] =
 *       SHA256(nonce)), and
 *   (4) it holds the EGETKEY-rooted session key the verifier expects
 *       (reportData[32..63] = SHA256(sessionKey)) — binding the key
 *       exchange into the attested channel instead of shipping an
 *       out-of-band secret.
 *
 * The TenantVerifier models the infrastructure's provisioning service:
 * like Machine::verifyNestedReport it shares the device root of trust,
 * so it can recompute the identity sealing key any *genuine* enclave
 * with the claimed identity would derive — an impostor can forge the
 * key-binding hash only by actually being that identity.
 */
#pragma once

#include <optional>

#include "core/attest.h"
#include "sgx/machine.h"
#include "sgx/report.h"
#include "support/rng.h"

namespace nesgx::attest {

/** Nonce length used by TenantVerifier::nextNonce(). */
constexpr std::size_t kNonceSize = 32;

/** 16-byte tenant session key rooted in an identity sealing key. */
Bytes sessionKeyFromSeal(const crypto::Sha256Digest& seal,
                         std::uint32_t tenantId);

/** 16-byte migration transport key: identity seal key + peer identity.
 *  Source and destination instances of the same enclave identity derive
 *  the same key (per machine root of trust), so a sealed snapshot moves
 *  between them without either side revealing its sealing key. */
Bytes migrationTransportKey(const crypto::Sha256Digest& seal,
                            const sgx::Measurement& peerMr);

/** Wire codec for NEREPORT evidence (full field set, LE counts). */
Bytes encodeNestedReport(const sgx::NestedReport& report);
Result<sgx::NestedReport> decodeNestedReport(ByteView blob);

/** The onboarding verifier's (synthetic) target measurement: reports in
 *  the evidence chain are MAC'ed for this identity. */
const sgx::Measurement& defaultVerifierMeasurement();

/** Per-tenant onboarding policy. */
struct TenantPolicy {
    sgx::Measurement expectedMrEnclave{};
    sgx::Measurement expectedMrSigner{};
    /** Expected gateway outer measurement; unset = must not be nested. */
    std::optional<sgx::Measurement> expectedOuter;
    /** Exact chain depth the serving topology implies (1 = flat tenant
     *  inner, 2 = CVM-hosted tenant inner). Unset = structure only. */
    std::optional<std::uint32_t> expectedChainDepth;
};

/** Outcome of one onboarding verification. */
struct Verdict {
    core::AttestationResult chain; ///< MAC/identity/outer/depth checks
    bool signerMatch = false;      ///< MRSIGNER as expected
    bool nonceBound = false;       ///< reportData carries SHA256(nonce)
    bool keyBound = false;         ///< reportData carries SHA256(key)
    /** The EGETKEY-rooted session key; set only when trusted(). */
    Bytes sessionKey;

    bool trusted() const
    {
        return chain.trusted() && signerMatch && nonceBound && keyBound;
    }
};

class TenantVerifier {
  public:
    explicit TenantVerifier(sgx::Machine& machine,
                            std::uint64_t nonceSeed = 0x0a77e57);

    /** The verifier's target identity (hand to the attesting enclave). */
    const sgx::Measurement& measurement() const { return measurement_; }

    /** A fresh 32-byte challenge; single-use per verify(). */
    Bytes nextNonce();

    /** Verifies one tenant's evidence blob against the policy. */
    Verdict verify(std::uint32_t tenantId, const sgx::NestedReport& report,
                   const TenantPolicy& policy, ByteView nonce) const;

  private:
    sgx::Machine& machine_;
    sgx::Measurement measurement_;
    Rng nonceRng_;
};

}  // namespace nesgx::attest
