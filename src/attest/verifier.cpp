#include "attest/verifier.h"

#include "crypto/kdf.h"
#include "crypto/sha256.h"

namespace nesgx::attest {

namespace {

Bytes
le32(std::uint32_t v)
{
    Bytes out(4);
    storeLe32(out.data(), v);
    return out;
}

void
appendMeasurement(Bytes& out, const sgx::Measurement& m)
{
    append(out, ByteView(m.data(), m.size()));
}

bool
takeMeasurement(ByteView blob, std::size_t& off, sgx::Measurement& out)
{
    if (blob.size() - off < 32) return false;
    std::copy(blob.begin() + off, blob.begin() + off + 32, out.begin());
    off += 32;
    return true;
}

}  // namespace

Bytes
sessionKeyFromSeal(const crypto::Sha256Digest& seal, std::uint32_t tenantId)
{
    std::array<std::uint8_t, 4> id{};
    storeLe32(id.data(), tenantId);
    auto key = crypto::deriveKey128(ByteView(seal.data(), seal.size()),
                                    "tenant-session",
                                    ByteView(id.data(), id.size()));
    return Bytes(key.begin(), key.end());
}

Bytes
migrationTransportKey(const crypto::Sha256Digest& seal,
                      const sgx::Measurement& peerMr)
{
    auto key = crypto::deriveKey128(ByteView(seal.data(), seal.size()),
                                    "migrate-transport",
                                    ByteView(peerMr.data(), peerMr.size()));
    return Bytes(key.begin(), key.end());
}

Bytes
encodeNestedReport(const sgx::NestedReport& report)
{
    Bytes out;
    appendMeasurement(out, report.base.mrenclave);
    appendMeasurement(out, report.base.mrsigner);
    Bytes attr(8);
    storeLe64(attr.data(), report.base.attributes);
    append(out, attr);
    append(out, ByteView(report.base.reportData.data(),
                         report.base.reportData.size()));
    append(out, ByteView(report.base.mac.data(), report.base.mac.size()));
    appendMeasurement(out, report.outerMeasurement);
    append(out, le32(report.chainDepth));
    append(out, le32(std::uint32_t(report.outerMeasurements.size())));
    for (const auto& m : report.outerMeasurements) appendMeasurement(out, m);
    append(out, le32(std::uint32_t(report.innerMeasurements.size())));
    for (const auto& m : report.innerMeasurements) appendMeasurement(out, m);
    append(out, ByteView(report.mac.data(), report.mac.size()));
    return out;
}

Result<sgx::NestedReport>
decodeNestedReport(ByteView blob)
{
    sgx::NestedReport report;
    std::size_t off = 0;
    if (!takeMeasurement(blob, off, report.base.mrenclave) ||
        !takeMeasurement(blob, off, report.base.mrsigner)) {
        return Err::BadCallBuffer;
    }
    if (blob.size() - off < 8) return Err::BadCallBuffer;
    report.base.attributes = loadLe64(blob.data() + off);
    off += 8;
    if (blob.size() - off < sgx::kReportDataSize + 32) {
        return Err::BadCallBuffer;
    }
    std::copy(blob.begin() + off, blob.begin() + off + sgx::kReportDataSize,
              report.base.reportData.begin());
    off += sgx::kReportDataSize;
    std::copy(blob.begin() + off, blob.begin() + off + 32,
              report.base.mac.begin());
    off += 32;
    if (!takeMeasurement(blob, off, report.outerMeasurement)) {
        return Err::BadCallBuffer;
    }
    if (blob.size() - off < 8) return Err::BadCallBuffer;
    report.chainDepth = loadLe32(blob.data() + off);
    off += 4;
    std::uint32_t outers = loadLe32(blob.data() + off);
    off += 4;
    // Bound counts by the remaining bytes before allocating.
    if (outers > (blob.size() - off) / 32) return Err::BadCallBuffer;
    report.outerMeasurements.resize(outers);
    for (auto& m : report.outerMeasurements) {
        if (!takeMeasurement(blob, off, m)) return Err::BadCallBuffer;
    }
    if (blob.size() - off < 4) return Err::BadCallBuffer;
    std::uint32_t inners = loadLe32(blob.data() + off);
    off += 4;
    if (inners > (blob.size() - off) / 32) return Err::BadCallBuffer;
    report.innerMeasurements.resize(inners);
    for (auto& m : report.innerMeasurements) {
        if (!takeMeasurement(blob, off, m)) return Err::BadCallBuffer;
    }
    if (blob.size() - off != 32) return Err::BadCallBuffer;
    std::copy(blob.begin() + off, blob.begin() + off + 32,
              report.mac.begin());
    return report;
}

const sgx::Measurement&
defaultVerifierMeasurement()
{
    static const sgx::Measurement mr = [] {
        const char* label = "nesgx-onboarding-verifier";
        return crypto::Sha256::hash(ByteView(
            reinterpret_cast<const std::uint8_t*>(label), 25));
    }();
    return mr;
}

TenantVerifier::TenantVerifier(sgx::Machine& machine, std::uint64_t nonceSeed)
    : machine_(machine),
      measurement_(defaultVerifierMeasurement()),
      nonceRng_(nonceSeed)
{
}

Bytes
TenantVerifier::nextNonce()
{
    return nonceRng_.bytes(kNonceSize);
}

Verdict
TenantVerifier::verify(std::uint32_t tenantId, const sgx::NestedReport& report,
                       const TenantPolicy& policy, ByteView nonce) const
{
    Verdict verdict;

    core::AttestationPolicy chainPolicy;
    chainPolicy.expectedMrEnclave = policy.expectedMrEnclave;
    chainPolicy.expectedOuter = policy.expectedOuter;
    chainPolicy.expectedChainDepth = policy.expectedChainDepth;
    // Onboarding happens one tenant at a time before the gateway fills
    // up, so we tolerate only the attested enclave itself as an inner
    // population (the report is the inner's own, which attests *its*
    // inners: a tenant inner must have none).
    verdict.chain = core::verifyNestedAttestation(machine_, report,
                                                  measurement_, chainPolicy);

    verdict.signerMatch =
        constantTimeEqual(ByteView(report.base.mrsigner.data(), 32),
                          ByteView(policy.expectedMrSigner.data(), 32));

    const crypto::Sha256Digest nonceHash = crypto::Sha256::hash(nonce);
    verdict.nonceBound =
        nonce.size() == kNonceSize &&
        constantTimeEqual(ByteView(report.base.reportData.data(), 32),
                          ByteView(nonceHash.data(), 32));

    // Recompute the session key the genuine identity would derive and
    // check the evidence binds exactly that key.
    const crypto::Sha256Digest seal = machine_.identitySealingKey(
        report.base.mrenclave, report.base.mrsigner);
    Bytes expectedKey = sessionKeyFromSeal(seal, tenantId);
    const crypto::Sha256Digest keyHash =
        crypto::Sha256::hash(ByteView(expectedKey.data(), expectedKey.size()));
    verdict.keyBound =
        constantTimeEqual(ByteView(report.base.reportData.data() + 32, 32),
                          ByteView(keyHash.data(), 32));

    if (verdict.trusted()) verdict.sessionKey = std::move(expectedKey);
    return verdict;
}

}  // namespace nesgx::attest
