/**
 * Deterministic pseudo-random generator used everywhere randomness is
 * needed (workload generation, synthetic datasets, crypto nonces in the
 * *model*). Determinism keeps every experiment reproducible run-to-run.
 */
#pragma once

#include <cstdint>

#include "support/bytes.h"

namespace nesgx {

/** SplitMix64-seeded xoshiro256** generator. */
class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform in [0, bound). bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Standard-normal variate (Box-Muller). */
    double nextGaussian();

    /** Fills a buffer with pseudo-random bytes. */
    void fill(std::uint8_t* p, std::size_t n);

    /** Returns n pseudo-random bytes. */
    Bytes bytes(std::size_t n);

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

}  // namespace nesgx
