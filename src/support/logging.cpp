#include "support/logging.h"

#include <cstdio>
#include <mutex>

namespace nesgx {

namespace {

LogLevel g_level = LogLevel::Off;
LogSinkFn g_sinkFn = nullptr;
void* g_sinkCtx = nullptr;

/** Serializes console writes and sink callouts (and guards the hook
 *  slot) so concurrent model threads never interleave half-lines. */
std::mutex&
logMutex()
{
    static std::mutex m;
    return m;
}

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
setLogSink(LogSinkFn fn, void* ctx)
{
    std::lock_guard<std::mutex> lock(logMutex());
    g_sinkFn = fn;
    g_sinkCtx = ctx;
}

void
clearLogSink(void* ctx)
{
    std::lock_guard<std::mutex> lock(logMutex());
    if (g_sinkCtx == ctx) {
        g_sinkFn = nullptr;
        g_sinkCtx = nullptr;
    }
}

bool
logEnabled(LogLevel level)
{
    if (level >= g_level && level != LogLevel::Off) return true;
    // A registered sink wants Warn/Error even when the console is quiet.
    return g_sinkFn != nullptr && level >= LogLevel::Warn &&
           level != LogLevel::Off;
}

void
logLine(LogLevel level, const std::string& msg)
{
    if (level == LogLevel::Off) return;
    std::lock_guard<std::mutex> lock(logMutex());
    if (level >= g_level) {
        std::fprintf(stderr, "[nesgx %-5s] %s\n", levelName(level),
                     msg.c_str());
    }
    if (g_sinkFn && level >= LogLevel::Warn) {
        g_sinkFn(g_sinkCtx, level, msg.c_str());
    }
}

}  // namespace nesgx
