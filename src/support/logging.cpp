#include "support/logging.h"

#include <cstdio>

namespace nesgx {

namespace {

LogLevel g_level = LogLevel::Off;

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
logLine(LogLevel level, const std::string& msg)
{
    if (level < g_level) return;
    std::fprintf(stderr, "[nesgx %-5s] %s\n", levelName(level), msg.c_str());
}

}  // namespace nesgx
