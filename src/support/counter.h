/**
 * Relaxed atomic counter with plain-integer ergonomics.
 *
 * The stats blocks (trace::StatsCounters, sdk::Urts::CallStats, the
 * switchless EngineStats) are written from every worker thread once the
 * serving layer runs on real OS threads. Their increments are pure
 * accumulation — order-independent — so relaxed atomics keep the final
 * totals deterministic for a deterministic workload while making the
 * concurrent bumps race-free.
 *
 * The type preserves the existing field syntax: `++c`, `c += n`,
 * `c = 0`, implicit read as std::uint64_t (so `(unsigned long long)c`,
 * `double(c)` and comparisons all keep working), and member-wise copy
 * for the snapshot-style `Stats s = machine.stats()` idiom.
 */
#pragma once

#include <atomic>
#include <cstdint>

namespace nesgx {

class Counter {
  public:
    constexpr Counter() noexcept = default;
    constexpr Counter(std::uint64_t v) noexcept : v_(v) {}

    Counter(const Counter& o) noexcept : v_(o.load()) {}
    Counter& operator=(const Counter& o) noexcept
    {
        v_.store(o.load(), std::memory_order_relaxed);
        return *this;
    }
    Counter& operator=(std::uint64_t v) noexcept
    {
        v_.store(v, std::memory_order_relaxed);
        return *this;
    }

    operator std::uint64_t() const noexcept { return load(); }
    std::uint64_t load() const noexcept
    {
        return v_.load(std::memory_order_relaxed);
    }

    Counter& operator++() noexcept
    {
        v_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }
    std::uint64_t operator++(int) noexcept
    {
        return v_.fetch_add(1, std::memory_order_relaxed);
    }
    Counter& operator+=(std::uint64_t d) noexcept
    {
        v_.fetch_add(d, std::memory_order_relaxed);
        return *this;
    }
    Counter& operator-=(std::uint64_t d) noexcept
    {
        v_.fetch_sub(d, std::memory_order_relaxed);
        return *this;
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

}  // namespace nesgx
