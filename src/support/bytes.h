/**
 * Byte-buffer helpers shared by the crypto substrate and the SGX model.
 */
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace nesgx {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/** Renders a byte view as lowercase hex. */
std::string toHex(ByteView data);

/** Parses lowercase/uppercase hex into bytes; throws on odd/garbage input. */
Bytes fromHex(const std::string& hex);

/** Copies a string's characters into a byte vector. */
Bytes bytesOf(const std::string& s);

/** Constant-time byte comparison (crypto MAC checks). */
bool constantTimeEqual(ByteView a, ByteView b);

/** Appends a view to a byte vector. */
void append(Bytes& out, ByteView data);

/** Little-endian integer store/load helpers. */
void storeLe32(std::uint8_t* p, std::uint32_t v);
void storeLe64(std::uint8_t* p, std::uint64_t v);
std::uint32_t loadLe32(const std::uint8_t* p);
std::uint64_t loadLe64(const std::uint8_t* p);

/** Big-endian integer store/load helpers (hash/crypto formats). */
void storeBe32(std::uint8_t* p, std::uint32_t v);
void storeBe64(std::uint8_t* p, std::uint64_t v);
std::uint32_t loadBe32(const std::uint8_t* p);
std::uint64_t loadBe64(const std::uint8_t* p);

}  // namespace nesgx
