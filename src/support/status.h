/**
 * Lightweight status / result types used across the nesgx library.
 *
 * The hardware model reports faults (general-protection fault, page fault,
 * SGX leaf error codes) as values rather than exceptions so the emulated
 * instruction semantics stay explicit, mirroring how a microcode
 * implementation signals failure through flags and fault vectors.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace nesgx {

/** Error codes surfaced by the emulated hardware and runtimes. */
enum class Err : std::uint32_t {
    Ok = 0,
    /// #GP(0): invalid leaf operands, bad transitions, busy TCS, ...
    GeneralProtection,
    /// #PF: translation exists but access is not permitted / page evicted.
    PageFault,
    /// SGX leaf: supplied EPC page already has a valid EPCM entry.
    PageInUse,
    /// SGX leaf: EPCM entry invalid / wrong page type for the operation.
    InvalidEpcPage,
    /// SGX leaf: SECS attributes or measurement checks failed at EINIT.
    InvalidMeasurement,
    /// SGX leaf: SIGSTRUCT signature did not verify.
    InvalidSignature,
    /// NASSO: expected peer measurement did not match (paper Fig. 4).
    AssociationRejected,
    /// ETRACK/EWB: threads still reference stale translations.
    TrackingIncomplete,
    /// EWB/ELDU: MAC or version check on an evicted page failed.
    PagingIntegrity,
    /// Runtime: call target not registered in the enclave interface.
    NoSuchCall,
    /// Runtime: marshalling buffer malformed or out of bounds.
    BadCallBuffer,
    /// OS model refused the request (out of EPC, bad mapping, ...).
    OsError,
    /// Attestation report MAC verification failed.
    ReportMacMismatch,
    /// Trusted heap exhausted.
    OutOfMemory,
    /// Lookup found nothing matching (victim selection, registries).
    NotFound,
    /// Serving layer: per-tenant admission queue is full.
    Backpressure,
    /// Serving layer: tenant quarantined (circuit breaker open / mid-rebuild).
    Unavailable,
    /// Serving layer: the server refused the sealed request (bad seal or
    /// sequence replay) — the response slot came back empty by design.
    SealRejected,
    /// Serving layer: request shed because its deadline passed in queue.
    Deadline,
    /// Trust path: NEREPORT evidence chain failed verification (bad MAC,
    /// identity/signer mismatch, wrong chain depth, or stale nonce).
    AttestationFailed,
    /// Serving layer: request stamped with a stale placement epoch — the
    /// tenant moved or rebuilt since the client last resolved it. The
    /// client must re-resolve placement and retry (redirect semantics).
    WrongEpoch,
};

/** Number of Err enumerators (exhaustive errName round-trip tests). */
constexpr std::size_t kErrCount = std::size_t(Err::WrongEpoch) + 1;

/** Human-readable name for an error code. */
const char* errName(Err e);

/** Exception wrapper used only at API boundaries that prefer throwing. */
class NesgxError : public std::runtime_error {
  public:
    explicit NesgxError(Err code, const std::string& what)
        : std::runtime_error(what), code_(code) {}

    Err code() const { return code_; }

  private:
    Err code_;
};

/**
 * Result of an emulated operation: either Ok or a fault code.
 *
 * Implicitly convertible to bool (true == success) so hardware-model call
 * sites read like the validation flow charts in the paper.
 */
class Status {
  public:
    Status() : code_(Err::Ok) {}
    Status(Err code) : code_(code) {}  // NOLINT: implicit by design

    static Status ok() { return Status(); }

    bool isOk() const { return code_ == Err::Ok; }
    explicit operator bool() const { return isOk(); }

    Err code() const { return code_; }
    const char* name() const { return errName(code_); }

    /** Throws NesgxError when the status is a failure. */
    void orThrow(const std::string& context) const;

    friend bool operator==(const Status& a, const Status& b) {
        return a.code_ == b.code_;
    }

  private:
    Err code_;
};

/** A value-or-fault result for emulated operations that produce data. */
template <typename T>
class Result {
  public:
    Result(T value) : value_(std::move(value)), status_() {}  // NOLINT
    Result(Err code) : status_(code) {}                       // NOLINT
    Result(Status status) : status_(status) {}                // NOLINT

    bool isOk() const { return status_.isOk(); }
    explicit operator bool() const { return isOk(); }

    Status status() const { return status_; }
    Err code() const { return status_.code(); }

    const T& value() const& { return *value_; }
    T& value() & { return *value_; }
    T&& value() && { return std::move(*value_); }

    /** Returns the value or throws NesgxError on fault. */
    T& orThrow(const std::string& context) & {
        status_.orThrow(context);
        return *value_;
    }

    T orThrow(const std::string& context) && {
        status_.orThrow(context);
        return std::move(*value_);
    }

  private:
    std::optional<T> value_;
    Status status_;
};

}  // namespace nesgx
