#include "support/rng.h"

#include <cmath>

namespace nesgx {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold) return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = nextDouble(-1.0, 1.0);
        v = nextDouble(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    haveSpare_ = true;
    return u * factor;
}

void
Rng::fill(std::uint8_t* p, std::size_t n)
{
    std::size_t i = 0;
    while (i + 8 <= n) {
        storeLe64(p + i, next());
        i += 8;
    }
    if (i < n) {
        std::uint8_t tmp[8];
        storeLe64(tmp, next());
        for (std::size_t j = 0; i < n; ++i, ++j) p[i] = tmp[j];
    }
}

Bytes
Rng::bytes(std::size_t n)
{
    Bytes out(n);
    fill(out.data(), n);
    return out;
}

}  // namespace nesgx
