/**
 * Minimal leveled logging. Off by default so tests and benches stay quiet;
 * examples enable Info to narrate what the emulated hardware is doing.
 */
#pragma once

#include <sstream>
#include <string>

namespace nesgx {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Sets the global log threshold. */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

/** Emits a log line if `level` passes the threshold. */
void logLine(LogLevel level, const std::string& msg);

namespace detail {

class LogStream {
  public:
    explicit LogStream(LogLevel level) : level_(level) {}
    ~LogStream() { logLine(level_, ss_.str()); }

    template <typename T>
    LogStream& operator<<(const T& v)
    {
        ss_ << v;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream ss_;
};

}  // namespace detail

}  // namespace nesgx

#define NESGX_LOG(level) \
    if (::nesgx::logLevel() <= (level)) ::nesgx::detail::LogStream(level)
#define NESGX_DEBUG NESGX_LOG(::nesgx::LogLevel::Debug)
#define NESGX_INFO NESGX_LOG(::nesgx::LogLevel::Info)
#define NESGX_WARN NESGX_LOG(::nesgx::LogLevel::Warn)
#define NESGX_ERROR NESGX_LOG(::nesgx::LogLevel::Error)
