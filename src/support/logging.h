/**
 * Minimal leveled logging. Off by default so tests and benches stay quiet;
 * examples enable Info to narrate what the emulated hardware is doing.
 *
 * A single sink hook lets the trace layer capture Warn/Error lines as
 * events (so a trace shows model warnings in context) without the support
 * library depending on trace. `logLine` serializes the console write and
 * the sink callout under one mutex, so concurrent threads never interleave
 * half-lines.
 */
#pragma once

#include <sstream>
#include <string>

namespace nesgx {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Sets the global log threshold. */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

/**
 * Warn/Error forwarding hook (one global slot, last registration wins).
 * `msg` is only valid for the duration of the call. The callback runs
 * under the logging mutex: it must not log.
 */
using LogSinkFn = void (*)(void* ctx, LogLevel level, const char* msg);
void setLogSink(LogSinkFn fn, void* ctx);

/** Clears the hook iff `ctx` still owns it (safe concurrent teardown). */
void clearLogSink(void* ctx);

/** True when a line at `level` would go anywhere (console or sink). */
bool logEnabled(LogLevel level);

/** Emits a log line: console if `level` passes the threshold, sink hook
 *  for Warn/Error. Thread-safe. */
void logLine(LogLevel level, const std::string& msg);

namespace detail {

class LogStream {
  public:
    explicit LogStream(LogLevel level) : level_(level) {}
    ~LogStream() { logLine(level_, ss_.str()); }

    template <typename T>
    LogStream& operator<<(const T& v)
    {
        ss_ << v;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream ss_;
};

}  // namespace detail

}  // namespace nesgx

#define NESGX_LOG(level) \
    if (::nesgx::logEnabled(level)) ::nesgx::detail::LogStream(level)
#define NESGX_DEBUG NESGX_LOG(::nesgx::LogLevel::Debug)
#define NESGX_INFO NESGX_LOG(::nesgx::LogLevel::Info)
#define NESGX_WARN NESGX_LOG(::nesgx::LogLevel::Warn)
#define NESGX_ERROR NESGX_LOG(::nesgx::LogLevel::Error)
