#include "support/bytes.h"

#include <stdexcept>

namespace nesgx {

namespace {

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("fromHex: non-hex character");
}

}  // namespace

std::string
toHex(ByteView data)
{
    static const char* digits = "0123456789abcdef";
    std::string out;
    out.reserve(data.size() * 2);
    for (std::uint8_t b : data) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

Bytes
fromHex(const std::string& hex)
{
    if (hex.size() % 2 != 0) {
        throw std::invalid_argument("fromHex: odd-length input");
    }
    Bytes out(hex.size() / 2);
    for (size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<std::uint8_t>(
            (hexNibble(hex[2 * i]) << 4) | hexNibble(hex[2 * i + 1]));
    }
    return out;
}

Bytes
bytesOf(const std::string& s)
{
    return Bytes(s.begin(), s.end());
}

bool
constantTimeEqual(ByteView a, ByteView b)
{
    if (a.size() != b.size()) return false;
    std::uint8_t acc = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    }
    return acc == 0;
}

void
append(Bytes& out, ByteView data)
{
    out.insert(out.end(), data.begin(), data.end());
}

void
storeLe32(std::uint8_t* p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
storeLe64(std::uint8_t* p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
loadLe32(const std::uint8_t* p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

std::uint64_t
loadLe64(const std::uint8_t* p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

void
storeBe32(std::uint8_t* p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * (3 - i)));
}

void
storeBe64(std::uint8_t* p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * (7 - i)));
}

std::uint32_t
loadBe32(const std::uint8_t* p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | p[i];
    return v;
}

std::uint64_t
loadBe64(const std::uint8_t* p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
    return v;
}

}  // namespace nesgx
