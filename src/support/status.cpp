#include "support/status.h"

namespace nesgx {

const char*
errName(Err e)
{
    switch (e) {
      case Err::Ok: return "Ok";
      case Err::GeneralProtection: return "GeneralProtection";
      case Err::PageFault: return "PageFault";
      case Err::PageInUse: return "PageInUse";
      case Err::InvalidEpcPage: return "InvalidEpcPage";
      case Err::InvalidMeasurement: return "InvalidMeasurement";
      case Err::InvalidSignature: return "InvalidSignature";
      case Err::AssociationRejected: return "AssociationRejected";
      case Err::TrackingIncomplete: return "TrackingIncomplete";
      case Err::PagingIntegrity: return "PagingIntegrity";
      case Err::NoSuchCall: return "NoSuchCall";
      case Err::BadCallBuffer: return "BadCallBuffer";
      case Err::OsError: return "OsError";
      case Err::ReportMacMismatch: return "ReportMacMismatch";
      case Err::OutOfMemory: return "OutOfMemory";
      case Err::NotFound: return "NotFound";
      case Err::Backpressure: return "Backpressure";
      case Err::Unavailable: return "Unavailable";
      case Err::SealRejected: return "SealRejected";
      case Err::Deadline: return "Deadline";
      case Err::AttestationFailed: return "AttestationFailed";
      case Err::WrongEpoch: return "WrongEpoch";
    }
    return "Unknown";
}

void
Status::orThrow(const std::string& context) const
{
    if (!isOk()) {
        throw NesgxError(code_, context + ": " + name());
    }
}

}  // namespace nesgx
