/**
 * The serving layer's top half: EPC pressure management, the worker
 * pool, and the TenantService facade gluing registry + admission +
 * scheduling together.
 *
 * EpcPressureManager keeps the EPC free list above a watermark by
 * paging out the coldest *idle* tenant inner (victims come from the
 * kernel's deterministic LRU, filtered to tenant inners that have no
 * dispatch in flight). TenantRegistry reloads transparently on the
 * victim's next request, so tenants far beyond EPC capacity stay
 * correct — they just pay cold-start reload latency.
 *
 * WorkerPool drains the admission queues batch-at-a-time across the
 * machine's cores: one batch = one EENTER + one NEENTER no matter how
 * many requests it carries, which is the transition amortization
 * bench_serve measures.
 *
 * The pool is also where the stack self-heals (DESIGN.md §11): every
 * dispatch failure is classified — *poisoned* errors (paging
 * integrity, lost EPC pages) destroy and rebuild the tenant's inner,
 * *transient* ones retry under a capped budget, and a per-tenant
 * circuit breaker quarantines tenants that keep failing so the rest of
 * the fleet is not starved by a broken one.
 */
#pragma once

#include <map>
#include <memory>

#include "serve/admission.h"
#include "serve/histogram.h"
#include "serve/registry.h"
#include "switchless/engine.h"

namespace nesgx::serve {

class EpcPressureManager {
  public:
    struct Config {
        /** Free-page watermark `relieve` restores after each batch. */
        std::size_t lowWatermarkPages = 32;
    };

    EpcPressureManager(os::Kernel& kernel, TenantRegistry& registry,
                       Config config)
        : kernel_(&kernel), registry_(&registry), config_(config)
    {
    }

    /** Evicts cold idle tenants until at least `pages` EPC pages are
     *  free; OsError when demand cannot be met. */
    Status ensureFree(std::uint64_t pages);

    /** Restores the watermark. A miss (every evictable tenant pinned or
     *  already out) is survivable — the next build pays reserveEpc — but
     *  it is counted, logged, and published, never swallowed. */
    void relieve();

    std::uint64_t tenantsEvicted() const { return tenantsEvicted_; }
    std::uint64_t pagesWritten() const { return pagesWritten_; }
    std::uint64_t watermarkMisses() const { return watermarkMisses_; }

  private:
    os::Kernel* kernel_;
    TenantRegistry* registry_;
    Config config_;
    std::uint64_t tenantsEvicted_ = 0;
    std::uint64_t pagesWritten_ = 0;
    std::uint64_t watermarkMisses_ = 0;
};

struct Completion {
    std::uint64_t id = 0;
    TenantId tenant = 0;
    Bytes sealedResponse;          ///< empty when the server refused it
    std::uint64_t latencyCycles = 0;
    bool ok = false;
    /** Why `ok` is false: the dispatch error after retries, SealRejected
     *  for a per-request refusal, Unavailable for breaker/rebuild
     *  quarantine. Ok iff `ok` is true. */
    Status status;
    /** The tenant's inner was (or is being) rebuilt while this request
     *  was in flight: the client must reseal from a fresh sequence. */
    bool tenantRebuilt = false;

    Err error() const { return status.code(); }
};

class WorkerPool {
  public:
    struct Config {
        std::size_t batchSize = 8;
        /** Cores to schedule dispatches on; 0 = all machine cores. */
        std::uint32_t cores = 0;
        /** Extra dispatch attempts for transient failures (0 = none). */
        std::uint32_t maxRetries = 2;
        /** Consecutive failed batches before the tenant's breaker opens. */
        std::uint32_t breakerThreshold = 4;
        /** Cooldown before an open breaker admits a half-open probe. */
        std::uint64_t breakerCooldownCycles = 200000;
    };

    WorkerPool(TenantRegistry& registry, AdmissionController& admission,
               EpcPressureManager& pressure, Config config);

    /** Serves one tenant batch (round-robin); false when queues are
     *  empty. Shedding counts as progress. */
    bool step();

    /** Completed requests since the last drain. */
    std::vector<Completion> drain();

    /** Routes dispatches through the switchless engine when armed;
     *  nullptr reverts to classic ecall dispatch. Not owned. */
    void setSwitchless(switchless::SwitchlessEngine* engine)
    {
        engine_ = engine;
    }

    std::uint64_t batchesDispatched() const { return batches_; }
    std::uint64_t requestsServed() const { return served_; }
    std::uint64_t dispatchFailures() const { return dispatchFailures_; }
    std::uint64_t retries() const { return retries_; }
    std::uint64_t rebuilds() const { return rebuilds_; }
    std::uint64_t breakerOpens() const { return breakerOpens_; }
    std::uint64_t breakerCloses() const { return breakerCloses_; }
    bool breakerOpen(TenantId tenant) const;
    const Histogram& rebuildLatency() const { return rebuildLatency_; }

  private:
    /** Per-tenant circuit breaker (DESIGN.md §11 state machine). */
    struct Breaker {
        std::uint32_t consecutiveFailures = 0;
        bool open = false;
        std::uint64_t probeAt = 0;  ///< absolute cycles; half-open gate
    };

    /** Destroys and rebuilds a poisoned tenant: fails its whole queue
     *  typed (the seals target the dead instance) and times the rebuild.
     *  On failure the tenant stays inner-less and is retried lazily. */
    Status rebuildTenantNow(TenantHandle& tenant);

    /** One batched dispatch: through the armed switchless channel when
     *  available, classic gateway ecall otherwise. */
    Result<Bytes> dispatchVia(TenantHandle& tenant, ByteView blob,
                              hw::CoreId core);

    TenantRegistry* registry_;
    switchless::SwitchlessEngine* engine_ = nullptr;
    AdmissionController* admission_;
    EpcPressureManager* pressure_;
    Config config_;
    hw::CoreId nextCore_ = 0;
    std::vector<Completion> completions_;
    std::map<TenantId, Breaker> breakers_;
    Histogram rebuildLatency_;
    std::uint64_t batches_ = 0;
    std::uint64_t served_ = 0;
    std::uint64_t dispatchFailures_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t rebuilds_ = 0;
    std::uint64_t breakerOpens_ = 0;
    std::uint64_t breakerCloses_ = 0;
};

/** The whole serving stack behind one object. */
class TenantService {
  public:
    struct Config {
        TenantRegistry::Config registry;
        AdmissionController::Config admission;
        WorkerPool::Config pool;
        EpcPressureManager::Config pressure;
        /** Exit-less dispatch (src/switchless). Off by default so the
         *  classic trace/counter streams stay byte-identical. */
        switchless::Config switchless;
    };

    TenantService(sdk::Urts& urts, Config config);

    /** Lazily instantiates the tenant (registry + pressure headroom). */
    Result<TenantHandle*> addTenant(TenantId id, Workload workload);

    /** Admits one sealed request for an existing tenant. */
    Status submit(TenantId tenant, Bytes sealed);

    /** Runs worker steps until the queues drain (or maxBatches). */
    std::size_t pump(std::size_t maxBatches = std::size_t(-1));

    std::vector<Completion> drain() { return pool_.drain(); }

    /**
     * Parks switchless pollers for every existing tenant up front (one
     * classic EENTER/NEENTER each) so the steady-state request path is
     * transition-free from the first batch. Returns channels armed; 0
     * when switchless is disabled. Arming failures degrade to classic
     * dispatch, they are never errors.
     */
    std::size_t armSwitchless();

    TenantRegistry& registry() { return registry_; }
    AdmissionController& admission() { return admission_; }
    EpcPressureManager& pressure() { return pressure_; }
    WorkerPool& pool() { return pool_; }
    switchless::SwitchlessEngine* switchlessEngine()
    {
        return switchless_.get();
    }

  private:
    static Config tuned(Config config);

    Config config_;  ///< tuned copy; must precede the members built from it
    TenantRegistry registry_;
    AdmissionController admission_;
    EpcPressureManager pressure_;
    WorkerPool pool_;
    std::unique_ptr<switchless::SwitchlessEngine> switchless_;
};

}  // namespace nesgx::serve
