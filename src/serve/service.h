/**
 * The serving layer's top half: EPC pressure management, the worker
 * pool, and the TenantService facade gluing registry + admission +
 * scheduling together.
 *
 * EpcPressureManager keeps the EPC free list above a watermark by
 * paging out the coldest *idle* tenant inner (victims come from the
 * kernel's deterministic LRU, filtered to tenant inners that have no
 * dispatch in flight). TenantRegistry reloads transparently on the
 * victim's next request, so tenants far beyond EPC capacity stay
 * correct — they just pay cold-start reload latency.
 *
 * WorkerPool drains the admission queues batch-at-a-time across the
 * machine's cores: one batch = one EENTER + one NEENTER no matter how
 * many requests it carries, which is the transition amortization
 * bench_serve measures.
 *
 * The pool is also where the stack self-heals (DESIGN.md §11): every
 * dispatch failure is classified — *poisoned* errors (paging
 * integrity, lost EPC pages) destroy and rebuild the tenant's inner,
 * *transient* ones retry under a capped budget, and a per-tenant
 * circuit breaker quarantines tenants that keep failing so the rest of
 * the fleet is not starved by a broken one.
 */
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "attest/verifier.h"
#include "serve/admission.h"
#include "serve/histogram.h"
#include "serve/registry.h"
#include "switchless/engine.h"

namespace nesgx::serve {

class EpcPressureManager {
  public:
    struct Config {
        /** Free-page watermark `relieve` restores after each batch. */
        std::size_t lowWatermarkPages = 32;
    };

    EpcPressureManager(os::Kernel& kernel, TenantRegistry& registry,
                       Config config)
        : kernel_(&kernel), registry_(&registry), config_(config)
    {
    }

    /** Evicts cold idle tenants until at least `pages` EPC pages are
     *  free; OsError when demand cannot be met. */
    Status ensureFree(std::uint64_t pages);

    /** Restores the watermark. A miss (every evictable tenant pinned or
     *  already out) is survivable — the next build pays reserveEpc — but
     *  it is counted, logged, and published, never swallowed. */
    void relieve();

    std::uint64_t tenantsEvicted() const { return tenantsEvicted_; }
    std::uint64_t pagesWritten() const { return pagesWritten_; }
    std::uint64_t watermarkMisses() const { return watermarkMisses_; }

  private:
    os::Kernel* kernel_;
    TenantRegistry* registry_;
    Config config_;
    /** Relaxed atomics: every worker thread relieves pressure after its
     *  own batches, so the eviction accounting races benignly. */
    Counter tenantsEvicted_;
    Counter pagesWritten_;
    Counter watermarkMisses_;
};

struct Completion {
    std::uint64_t id = 0;
    TenantId tenant = 0;
    Bytes sealedResponse;          ///< empty when the server refused it
    std::uint64_t latencyCycles = 0;
    bool ok = false;
    /** Why `ok` is false: the dispatch error after retries, SealRejected
     *  for a per-request refusal, Unavailable for breaker/rebuild
     *  quarantine. Ok iff `ok` is true. */
    Status status;
    /** The tenant's inner was (or is being) rebuilt while this request
     *  was in flight: the client must reseal from a fresh sequence. */
    bool tenantRebuilt = false;

    Err error() const { return status.code(); }
};

class WorkerPool {
  public:
    struct Config {
        std::size_t batchSize = 8;
        /** Cores to schedule dispatches on; 0 = all machine cores. */
        std::uint32_t cores = 0;
        /** Extra dispatch attempts for transient failures (0 = none). */
        std::uint32_t maxRetries = 2;
        /** Consecutive failed batches before the tenant's breaker opens. */
        std::uint32_t breakerThreshold = 4;
        /** Cooldown before an open breaker admits a half-open probe. */
        std::uint64_t breakerCooldownCycles = 200000;
        /** OS worker threads for runParallel (1 = the serial step()
         *  loop, byte-identical to the historical single-thread path). */
        std::size_t threads = 1;
    };

    WorkerPool(TenantRegistry& registry, AdmissionController& admission,
               EpcPressureManager& pressure, Config config);

    /** Serves one tenant batch (round-robin); false when queues are
     *  empty. Shedding counts as progress. */
    bool step();

    /**
     * Drains the queues with `threads` real OS worker threads (0 = the
     * configured default). Thread t pins simulated core t and owns every
     * tenant whose gateway index hashes to it, so one gateway's staging
     * heap and TCSes are only ever driven by one thread and a tenant's
     * batches keep their seal-sequence order. threads <= 1 falls back to
     * the serial step() loop — byte-identical traces. Returns batches
     * (steps) processed. All tenants must exist before this is called;
     * enable the trace bus's parallel mode first when a sink listens.
     */
    std::size_t runParallel(std::size_t threads = 0);

    /** Completed requests since the last drain. */
    std::vector<Completion> drain();

    /** Routes dispatches through the switchless engine when armed;
     *  nullptr reverts to classic ecall dispatch. Not owned. */
    void setSwitchless(switchless::SwitchlessEngine* engine)
    {
        engine_ = engine;
    }

    /** Supervisor entry (escalation ladder's tenant-rebuild rung): owns
     *  the tenant's lock for the whole destroy-and-rebuild, exactly like
     *  the in-batch recovery path. */
    Status rebuildTenant(TenantHandle& tenant);

    /** Supervisor entry (subtree-rebuild rung): disarms every member's
     *  switchless channel, fails their queued requests typed, then
     *  rebuilds the whole gateway subtree bottom-up. */
    Status rebuildSubtree(std::size_t gatewayIndex);

    std::uint64_t batchesDispatched() const { return batches_; }
    std::uint64_t requestsServed() const { return served_; }
    std::uint64_t dispatchFailures() const { return dispatchFailures_; }
    std::uint64_t retries() const { return retries_; }
    std::uint64_t rebuilds() const { return rebuilds_; }
    /** Whole-gateway-subtree rebuilds (Cvm topology escalation). */
    std::uint64_t subtreeRebuilds() const { return subtreeRebuilds_; }
    std::uint64_t breakerOpens() const { return breakerOpens_; }
    std::uint64_t breakerCloses() const { return breakerCloses_; }
    bool breakerOpen(TenantId tenant) const;
    const Histogram& rebuildLatency() const { return rebuildLatency_; }

  private:
    /** Per-tenant circuit breaker (DESIGN.md §11 state machine). The
     *  fields are written only by the tenant's owning worker thread, but
     *  the supervisor reads them from its own thread (breakerOpen), so
     *  they are relaxed atomics rather than plain ints. */
    struct Breaker {
        Counter consecutiveFailures;
        std::atomic<bool> open{false};
        std::atomic<std::uint64_t> probeAt{0};  ///< cycles; half-open gate
    };

    /** Destroys and rebuilds a poisoned tenant: fails its whole queue
     *  typed (the seals target the dead instance) and times the rebuild.
     *  On failure the tenant stays inner-less and is retried lazily.
     *  Under the Cvm topology a tenant-level rebuild that fails
     *  escalates to rebuildGatewaySubtree — the gateway layer itself may
     *  be the casualty. */
    Status rebuildTenantNow(TenantHandle& tenant);

    /** Fails `tenantId`'s queued requests typed with the rebuilt flag
     *  (the seals target an instance that is being destroyed). */
    void failQueuedRebuilt(TenantId tenantId);

    /** One batched dispatch: through the armed switchless channel when
     *  available, classic gateway ecall otherwise. */
    Result<Bytes> dispatchVia(TenantHandle& tenant, ByteView blob,
                              hw::CoreId core);

    /** Takes + serves one batch for `tenantId`: shed completions, the
     *  breaker gate, the retry loop, completion delivery, then pressure
     *  relief. `haveFixedCore` pins the dispatch core (parallel workers);
     *  otherwise the historical round-robin picks per attempt. */
    void processTenant(TenantId tenantId, hw::CoreId fixedCore,
                       bool haveFixedCore);

    /** The locked middle of processTenant: everything from the breaker
     *  gate through breaker bookkeeping, under the tenant's own lock. */
    void serveBatch(TenantHandle& tenant, std::vector<Request> batch,
                    hw::CoreId fixedCore, bool haveFixedCore);

    /** Serial-mode round-robin core pick (single-thread only). */
    hw::CoreId pickCore();

    /** Per-tenant breaker slot; std::map node, so the reference stays
     *  valid while other threads insert their own tenants' slots. */
    Breaker& breakerFor(TenantId tenant);

    TenantRegistry* registry_;
    switchless::SwitchlessEngine* engine_ = nullptr;
    AdmissionController* admission_;
    EpcPressureManager* pressure_;
    Config config_;
    hw::CoreId nextCore_ = 0;
    /** Completions are pushed by every worker and swapped out by drain. */
    mutable std::mutex completionsM_;
    std::vector<Completion> completions_;
    /** Guards only the breaker map's structure; each Breaker's fields are
     *  owned by the tenant's single worker thread (partitioning). */
    mutable std::mutex breakersM_;
    std::map<TenantId, Breaker> breakers_;
    mutable std::mutex rebuildM_;  ///< rebuildLatency_ sample inserts
    Histogram rebuildLatency_;
    Counter batches_;
    Counter served_;
    Counter dispatchFailures_;
    Counter retries_;
    Counter rebuilds_;
    Counter subtreeRebuilds_;
    Counter breakerOpens_;
    Counter breakerCloses_;
};

/** The whole serving stack behind one object. */
class TenantService {
  public:
    struct Config {
        TenantRegistry::Config registry;
        AdmissionController::Config admission;
        WorkerPool::Config pool;
        EpcPressureManager::Config pressure;
        /** Exit-less dispatch (src/switchless). Off by default so the
         *  classic trace/counter streams stay byte-identical. */
        switchless::Config switchless;
        /**
         * NEREPORT-gated onboarding (src/attest): addTenant admits a
         * tenant only after its evidence chain verifies — inner identity,
         * author signer, gateway-outer binding, topology-implied chain
         * depth, nonce freshness, and EGETKEY-rooted session-key binding.
         * Off = the legacy faith-based admission with out-of-band keys.
         */
        bool attestOnboarding = false;
        std::uint64_t attestNonceSeed = 0x0a77e57;
        /** Override of the chain depth the verifier demands (tests/CI
         *  prove end-to-end refusal on a topology/depth mismatch). */
        std::optional<std::uint32_t> attestDepthOverride;
    };

    TenantService(sdk::Urts& urts, Config config);

    /** Lazily instantiates the tenant (registry + pressure headroom).
     *  Under attestOnboarding the tenant is admitted only after NEREPORT
     *  chain verification; a failed verification tears the instance back
     *  down and returns Err::AttestationFailed. */
    Result<TenantHandle*> addTenant(TenantId id, Workload workload);

    /** Attestation-gated onboarding active? (Migration re-attests.) */
    bool attestationEnabled() const { return config_.attestOnboarding; }

    /** The tenant's EGETKEY-rooted session key (empty = never attested:
     *  the client should fall back to the out-of-band tenantKey). */
    Bytes sessionKeyFor(TenantId id) const;

    /**
     * Challenges `inner` (freshly built, associated, and reachable via
     * its ancestor chain) and verifies the evidence against this
     * service's policy for tenant `id` hosted by gateway `gatewayIndex`.
     * On success the session key is recorded. Used at onboarding and by
     * the migration engine to re-attest a staged destination instance.
     */
    attest::Verdict attestInner(sdk::LoadedEnclave* inner, TenantId id,
                                std::size_t gatewayIndex);

    /** Disarms, purges, forgets, and unloads a tenant (onboarding
     *  rejection or the source half of a cross-host move). */
    Status removeTenant(TenantId id);

    /** Admits one sealed request for an existing tenant. */
    Status submit(TenantId tenant, Bytes sealed);

    /** What an epoch-fenced client resolves before stamping requests. */
    struct Placement {
        std::uint64_t epoch = 0;        ///< 0 = tenant unknown here
        std::uint64_t incarnation = 0;  ///< bumps only on state loss
    };

    /** Current placement of a tenant ({0, 0} when unknown). */
    Placement placement(TenantId id);

    /**
     * Epoch-fenced admission: `stamped` is stampEpoch(epoch, sealed) —
     * a host-side [u64 epoch LE] prefix the server strips before the
     * sealed bytes ever reach an enclave (machine-visible traffic stays
     * byte-identical to the unfenced path). A stale epoch refuses with
     * Err::WrongEpoch: the redirect telling the client to re-resolve
     * placement and reseal/restamp. Plain submit() stays unfenced.
     */
    Status submitStamped(TenantId tenant, Bytes stamped);

    /** Runs worker steps until the queues drain (or maxBatches). */
    std::size_t pump(std::size_t maxBatches = std::size_t(-1));

    /** Drains the queues with real OS worker threads (see
     *  WorkerPool::runParallel); threads <= 1 is the serial pump. */
    std::size_t pumpParallel(std::size_t threads)
    {
        return pool_.runParallel(threads);
    }

    std::vector<Completion> drain() { return pool_.drain(); }

    /**
     * Parks switchless pollers for every existing tenant up front (one
     * classic EENTER/NEENTER each) so the steady-state request path is
     * transition-free from the first batch. Returns channels armed; 0
     * when switchless is disabled. Arming failures degrade to classic
     * dispatch, they are never errors.
     */
    std::size_t armSwitchless();

    TenantRegistry& registry() { return registry_; }
    AdmissionController& admission() { return admission_; }
    EpcPressureManager& pressure() { return pressure_; }
    WorkerPool& pool() { return pool_; }
    switchless::SwitchlessEngine* switchlessEngine()
    {
        return switchless_.get();
    }

  private:
    static Config tuned(Config config);

    Config config_;  ///< tuned copy; must precede the members built from it
    TenantRegistry registry_;
    AdmissionController admission_;
    EpcPressureManager pressure_;
    WorkerPool pool_;
    std::unique_ptr<switchless::SwitchlessEngine> switchless_;
    std::unique_ptr<attest::TenantVerifier> verifier_;
    /** Session keys recorded by attestInner (service-side copy handed to
     *  clients; the authoritative copy lives inside the inner). */
    std::map<TenantId, Bytes> sessionKeys_;
};

}  // namespace nesgx::serve
