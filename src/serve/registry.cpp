#include "serve/registry.h"

#include <algorithm>

#include "attest/verifier.h"
#include "crypto/sha256.h"
#include "db/executor.h"
#include "fault/injector.h"
#include "trace/bus.h"

namespace nesgx::serve {

namespace {

/** Mutual trust anchor: anything signed by the service author key may
 *  associate, in either role. This is what makes lazy tenant creation
 *  possible — the gateway's SIGSTRUCT admits future inners by signer,
 *  not by a measurement list frozen at build time. */
sgx::PeerExpectation
authorExpectation()
{
    sgx::PeerExpectation e;
    e.mrsigner = core::defaultAuthorKey().pub.signerMeasurement();
    return e;
}

/** State logically private to one tenant's inner enclave. */
struct ServerState {
    TenantId tenant;
    Workload workload;
    crypto::AesGcm gcm;
    /** EGETKEY-rooted session key once provisioned; empty while on the
     *  legacy out-of-band tenantKey(). Carried by migration snapshots. */
    Bytes sessionKey;
    std::uint64_t lastSeq = 0;
    bool seenAny = false;
    db::Database db;
    /** Statement journal: deterministic replay rebuilds `db` on import
     *  (the database itself has no serialization path). */
    std::vector<std::string> sqlJournal;

    ServerState(TenantId t, Workload w)
        : tenant(t), workload(w), gcm(tenantKey(t))
    {
    }

    Result<Bytes> execute(sdk::TrustedEnv& env, ByteView plain)
    {
        switch (workload) {
          case Workload::Echo:
            env.chargeCycles(plain.size());
            return Bytes(plain.begin(), plain.end());
          case Workload::Sql: {
            std::string stmt(plain.begin(), plain.end());
            std::uint64_t before = db.workUnits();
            db::QueryResult r = db.execute(stmt);
            sqlJournal.push_back(std::move(stmt));
            env.chargeCycles((db.workUnits() - before) * 20 + 200);
            return bytesOf(sqlResultText(r.ok, r.error, r.rowsAffected,
                                         r.rows.size()));
          }
          case Workload::Svm: {
            env.chargeCycles(64 * plain.size() + 128);
            Bytes out(8);
            storeLe64(out.data(),
                      std::uint64_t(svmScore(tenant, plain)));
            return out;
          }
        }
        return Err::NoSuchCall;
    }

    /** One sealed request in, one sealed response out; empty bytes mark
     *  a refused request (bad seal or sequence regression). */
    Bytes serveOne(sdk::TrustedEnv& env, ByteView sealed)
    {
        env.chargeGcm(sealed.size());
        auto opened = openMessage(gcm, tenant, kDirRequest, sealed);
        if (!opened) return Bytes{};
        std::uint64_t seq = opened.value().seq;
        // Strictly monotonic: gaps are expected (the admission layer
        // sheds), replays and reordering across batches are not.
        if (seenAny && seq <= lastSeq) return Bytes{};
        seenAny = true;
        lastSeq = seq;
        auto resp = execute(env, opened.value().plain);
        if (!resp) return Bytes{};
        env.chargeGcm(resp.value().size());
        return sealMessage(gcm, tenant, kDirResponse, seq, resp.value());
    }
};

}  // namespace

TenantRegistry::TenantRegistry(sdk::Urts& urts, Config config)
    : urts_(&urts), config_(config)
{
}

Status
TenantRegistry::reserveEpc(std::uint64_t pages)
{
    if (!epcReserve_) return Status::ok();
    return epcReserve_(pages);
}

TenantHandle*
TenantRegistry::find(TenantId id)
{
    auto it = tenants_.find(id);
    return it == tenants_.end() ? nullptr : it->second.get();
}

Status
TenantRegistry::ensureCvmRoot()
{
    if (config_.topology != Topology::Cvm || cvmRoot_ != nullptr) {
        return Status::ok();
    }
    sdk::EnclaveSpec spec;
    spec.name = "serve-cvm";
    spec.codePages = config_.cvmCodePages;
    spec.dataPages = 4;
    spec.heapPages = config_.cvmHeapPages;
    spec.stackPages = 4;
    spec.tcsCount = config_.cvmTcs;
    // The root hosts gateways exactly as gateways host tenants: by
    // author signer, so the fleet can grow after EINIT.
    spec.allowedInners.push_back(authorExpectation());

    Status st = reserveEpc(spec.totalPages() + 1);
    if (!st) return st;
    auto loaded = urts_->load(sdk::buildImage(spec, core::defaultAuthorKey()));
    if (!loaded) return loaded.status();
    cvmRoot_ = loaded.value();
    return Status::ok();
}

Result<TenantRegistry::Gateway>
TenantRegistry::makeGateway(std::size_t index)
{
    Status root = ensureCvmRoot();
    if (!root) return root;

    sdk::EnclaveSpec spec;
    spec.name = "serve-gw-" + std::to_string(index);
    spec.codePages = config_.outerCodePages;
    spec.dataPages = 4;
    spec.heapPages = config_.outerHeapPages;
    spec.stackPages = 4;
    spec.tcsCount = config_.gatewayTcs;
    spec.allowedInners.push_back(authorExpectation());
    if (config_.topology == Topology::Cvm) {
        // The gateway itself nests under the CVM root.
        spec.expectedOuter = authorExpectation();
    }

    auto state = std::make_shared<GatewayState>();
    state->slots.resize(config_.tenantsPerOuter, nullptr);

    auto dispatch = [state](sdk::TrustedEnv& env,
                            ByteView arg) -> Result<Bytes> {
        auto batch = parseBatch(arg);
        if (!batch) return batch.status();
        if (batch.value().slot >= state->slots.size()) {
            return Err::NotFound;
        }
        sdk::LoadedEnclave* inner = state->slots[batch.value().slot];
        if (!inner) return Err::NotFound;

        // Stage the whole sealed batch into the gateway heap once;
        // responses come back through the same region, so the cap
        // keeps a margin over the request size.
        std::uint64_t need = arg.size() + 4096;
        if (state->stagingCap < need) {
            if (state->stagingVa != 0) env.free(state->stagingVa);
            state->stagingVa = env.alloc(need);
            if (state->stagingVa == 0) return Err::OutOfMemory;
            state->stagingCap = need;
        }
        Status st = env.writeBytes(state->stagingVa, arg);
        if (!st) return st;

        Bytes desc(16);
        storeLe64(desc.data(), state->stagingVa);
        storeLe64(desc.data() + 8, arg.size());
        // The single NEENTER of the whole batch.
        auto respLen = env.nEcall(*inner, "serve_batch", desc);
        if (!respLen) return respLen.status();
        if (respLen.value().size() != 8) return Err::BadCallBuffer;
        std::uint64_t len = loadLe64(respLen.value().data());
        if (len > state->stagingCap) return Err::BadCallBuffer;
        return env.readBytes(state->stagingVa, len);
    };
    spec.interface->addEcall("gw_dispatch", dispatch);
    if (config_.topology == Topology::Cvm) {
        // Under the CVM root the gateway is entered by NEENTER (the last
        // hop of the dispatch chain resolves n_ecalls only), so the same
        // body is registered under both call tables.
        spec.interface->addNEcall("gw_dispatch", dispatch);
    }

    Status st = reserveEpc(spec.totalPages() + 1);
    if (!st) return st;
    auto image = sdk::buildImage(spec, core::defaultAuthorKey());
    auto loaded = urts_->load(image);
    if (!loaded) return loaded.status();
    if (config_.topology == Topology::Cvm) {
        st = urts_->associate(loaded.value(), cvmRoot_);
        if (!st) {
            (void)urts_->unload(loaded.value());
            return st;
        }
    }

    Gateway gw;
    gw.outer = loaded.value();
    gw.state = std::move(state);
    return gw;
}

Result<std::size_t>
TenantRegistry::gatewayWithRoom()
{
    if (!gateways_.empty() &&
        gateways_.back().tenantCount < config_.tenantsPerOuter) {
        return gateways_.size() - 1;
    }
    auto gw = makeGateway(gateways_.size());
    if (!gw) return gw.status();
    gateways_.push_back(std::move(gw.value()));
    return gateways_.size() - 1;
}

Result<sdk::LoadedEnclave*>
TenantRegistry::buildInner(TenantId id, Workload workload, Gateway& gateway)
{
    sdk::EnclaveSpec spec;
    spec.name = "tenant-" + std::to_string(id);
    spec.codePages = config_.innerCodePages;
    spec.dataPages = 2;
    spec.heapPages = config_.innerHeapPages;
    spec.stackPages = 2;
    spec.tcsCount = config_.innerTcs;
    spec.expectedOuter = authorExpectation();

    auto server = std::make_shared<ServerState>(id, workload);
    spec.interface->addNEcall(
        "serve_batch",
        [server](sdk::TrustedEnv& env, ByteView desc) -> Result<Bytes> {
            if (desc.size() != 16) return Err::BadCallBuffer;
            hw::Vaddr va = loadLe64(desc.data());
            std::uint64_t len = loadLe64(desc.data() + 8);
            // By-reference read of the gateway's staging region: the
            // EPCM owner is the outer, reached via the closure walk.
            auto blob = env.readBytes(va, len);
            if (!blob) return blob.status();
            auto batch = parseBatch(blob.value());
            if (!batch) return batch.status();

            std::vector<Bytes> responses;
            responses.reserve(batch.value().msgs.size());
            for (ByteView msg : batch.value().msgs) {
                responses.push_back(server->serveOne(env, msg));
            }
            Bytes respBlob = packResponses(responses);
            Status st = env.writeBytes(va, respBlob);
            if (!st) return st;
            Bytes out(8);
            storeLe64(out.data(), respBlob.size());
            return out;
        });

    // Trust-path provisioning: the inner derives its session key from
    // its EGETKEY identity sealing key and (mode 1) returns NEREPORT
    // evidence binding the verifier's nonce and that key. Mode 0 only
    // re-derives the key — the rebuild path's way to restore a verified
    // tenant's key without a fresh challenge.
    // arg = [u8 mode][32B verifier mrenclave][32B nonce]
    spec.interface->addNEcall(
        "tenant_provision",
        [server](sdk::TrustedEnv& env, ByteView arg) -> Result<Bytes> {
            if (arg.size() != 1 + 32 + attest::kNonceSize) {
                return Err::BadCallBuffer;
            }
            auto seal = env.getSealKeyIdentity();
            if (!seal) return seal.status();
            Bytes key = attest::sessionKeyFromSeal(seal.value(),
                                                   server->tenant);
            server->sessionKey = key;
            server->gcm = crypto::AesGcm(key);
            server->lastSeq = 0;
            server->seenAny = false;
            if (arg[0] == 0) return Bytes{};

            sgx::TargetInfo target;
            std::copy(arg.begin() + 1, arg.begin() + 33,
                      target.mrenclave.begin());
            const crypto::Sha256Digest nonceHash =
                crypto::Sha256::hash(arg.subspan(33, attest::kNonceSize));
            const crypto::Sha256Digest keyHash =
                crypto::Sha256::hash(ByteView(key.data(), key.size()));
            sgx::ReportData data{};
            std::copy(nonceHash.begin(), nonceHash.end(), data.begin());
            std::copy(keyHash.begin(), keyHash.end(), data.begin() + 32);
            auto report = env.getNestedReport(target, data);
            if (!report) return report.status();
            return attest::encodeNestedReport(report.value());
        });

    // Migration export: seal the whole session (key, replay high-water
    // mark, statement journal) under a transport key only an enclave of
    // the same identity — on a machine whose root of trust vouches for
    // it — can re-derive. arg = [32B destination mrenclave]
    spec.interface->addNEcall(
        "tenant_export",
        [server](sdk::TrustedEnv& env, ByteView arg) -> Result<Bytes> {
            if (arg.size() != 32) return Err::BadCallBuffer;
            sgx::Measurement dstMr{};
            std::copy(arg.begin(), arg.end(), dstMr.begin());
            auto seal = env.getSealKeyIdentity();
            if (!seal) return seal.status();
            Bytes tkey = attest::migrationTransportKey(seal.value(), dstMr);
            TenantSnapshot snap;
            snap.sessionKey = server->sessionKey;
            snap.lastSeq = server->lastSeq;
            snap.seenAny = server->seenAny;
            snap.sqlJournal = server->sqlJournal;
            Bytes blob = packSnapshot(snap);
            env.chargeGcm(blob.size());
            return sealMessage(crypto::AesGcm(tkey), server->tenant,
                               kDirMigrate, snap.lastSeq, blob);
        });

    // Migration import: open a snapshot sealed by the source instance
    // and resume the session. arg = [32B source mrenclave][sealed blob]
    spec.interface->addNEcall(
        "tenant_import",
        [server](sdk::TrustedEnv& env, ByteView arg) -> Result<Bytes> {
            if (arg.size() < 32) return Err::BadCallBuffer;
            sgx::Measurement srcMr{};
            std::copy(arg.begin(), arg.begin() + 32, srcMr.begin());
            auto seal = env.getSealKeyIdentity();
            if (!seal) return seal.status();
            Bytes tkey = attest::migrationTransportKey(seal.value(), srcMr);
            env.chargeGcm(arg.size() - 32);
            auto opened = openMessage(crypto::AesGcm(tkey), server->tenant,
                                      kDirMigrate, arg.subspan(32));
            if (!opened) return opened.status();
            auto snap = parseSnapshot(opened.value().plain);
            if (!snap) return snap.status();
            if (!snap.value().sessionKey.empty()) {
                server->sessionKey = snap.value().sessionKey;
                server->gcm = crypto::AesGcm(server->sessionKey);
            }
            server->sqlJournal = std::move(snap.value().sqlJournal);
            server->db = db::Database{};
            for (const auto& stmt : server->sqlJournal) {
                (void)server->db.execute(stmt);
            }
            env.chargeCycles(server->sqlJournal.size() * 20 + 100);
#ifndef NESGX_BUG_MIGRATE_REPLAY
            // Sequence continuity: the replay high-water mark survives
            // the move, so a request captured before the migration can
            // never be replayed against the new instance.
            server->lastSeq = snap.value().lastSeq;
            server->seenAny = snap.value().seenAny;
#endif
            return Bytes{};
        });

    Status st = reserveEpc(spec.totalPages() + 1);
    if (!st) return st;
    auto image = sdk::buildImage(spec, core::defaultAuthorKey());
    auto loaded = urts_->load(image);
    if (!loaded) return loaded.status();
    st = urts_->associate(loaded.value(), gateway.outer);
    if (!st) return st;
    return loaded.value();
}

Result<TenantHandle*>
TenantRegistry::ensure(TenantId id, Workload workload)
{
    if (TenantHandle* existing = find(id)) return existing;

    auto gwIndex = gatewayWithRoom();
    if (!gwIndex) return gwIndex.status();
    Gateway& gateway = gateways_[gwIndex.value()];

    auto inner = buildInner(id, workload, gateway);
    if (!inner) return inner.status();

    auto tenant = std::make_unique<TenantHandle>();
    tenant->id = id;
    tenant->workload = workload;
    tenant->inner = inner.value();
    tenant->gatewayIndex = gwIndex.value();
    // First free slot: retirements and relocations leave holes, so the
    // fill index is not simply the tenant count.
    std::uint32_t slot = 0;
    while (slot < gateway.state->slots.size() &&
           gateway.state->slots[slot] != nullptr) {
        ++slot;
    }
    tenant->slot = slot;
    gateway.state->slots[tenant->slot] = inner.value();
    ++gateway.tenantCount;

    TenantHandle* out = tenant.get();
    tenants_[id] = std::move(tenant);
    return out;
}

void
TenantRegistry::crashGateway(std::size_t index)
{
    std::lock_guard<std::mutex> g(healthM_);
    crashedGateways_.insert(index);
}

bool
TenantRegistry::gatewayCrashed(std::size_t index) const
{
    std::lock_guard<std::mutex> g(healthM_);
    return crashedGateways_.count(index) != 0;
}

Result<Bytes>
TenantRegistry::dispatch(TenantHandle& tenant, ByteView blob, hw::CoreId core)
{
    // Failure-domain fault sites: a gateway-crash hit marks this batch's
    // gateway dead (until its subtree is rebuilt), a host-degrade hit
    // marks the whole host's data plane refusing. Both are front-checked
    // below, so with no injector armed this is two predictable branches.
    sgx::Machine& machine = urts_->machine();
    if (machine.faultFires(fault::FaultSite::GatewayCrash, core)) {
        crashGateway(tenant.gatewayIndex);
    }
    if (machine.faultFires(fault::FaultSite::HostDegrade, core)) {
        setDegraded(true);
    }
    if (degraded()) return Err::Unavailable;
    if (gatewayCrashed(tenant.gatewayIndex)) return Err::Unavailable;
    if (!tenant.inner) return Err::Unavailable;
    if (config_.requireVerification && !tenant.verified) {
        return Err::AttestationFailed;
    }
    Gateway& gateway = gateways_[tenant.gatewayIndex];
    if (!gateway.outer) return Err::Unavailable;  // mid subtree rebuild
    if (config_.topology == Topology::Cvm) {
        // Depth-3 entry: EENTER the CVM root, NEENTER the gateway, and
        // the gateway's dispatch body NEENTERs the tenant — the chain
        // walk validates every adjacency on the way down.
        return urts_->ecallChain({cvmRoot_, gateway.outer}, "gw_dispatch",
                                 blob, core);
    }
    return urts_->ecall(gateway.outer, "gw_dispatch", blob, core);
}

std::vector<sdk::LoadedEnclave*>
TenantRegistry::dispatchChain(const TenantHandle& tenant)
{
    if (config_.topology != Topology::Cvm || cvmRoot_ == nullptr ||
        tenant.inner == nullptr) {
        return {};
    }
    Gateway& gateway = gateways_[tenant.gatewayIndex];
    if (!gateway.outer) return {};
    return {cvmRoot_, gateway.outer, tenant.inner};
}

Status
TenantRegistry::reloadEnclave(sdk::LoadedEnclave* enclave,
                              std::uint64_t* pages)
{
    if (!enclave) return Status::ok();
    os::Kernel& kernel = urts_->kernel();
    const os::EnclaveRecord* rec = kernel.enclaveRecord(enclave->secsPage());
    if (!rec || rec->evicted.empty()) return Status::ok();

    // Make room for the whole reload up front (evicting colder tenants
    // if needed); a refusal is not fatal — the allocator may still cover
    // part of it, and the worker retries the remainder.
    (void)reserveEpc(rec->evicted.size());

    std::vector<hw::Vaddr> vas;
    vas.reserve(rec->evicted.size());
    for (const auto& [va, blob] : rec->evicted) vas.push_back(va);
    for (hw::Vaddr va : vas) {
        Status st = kernel.reloadPage(enclave->secsPage(), va);
        if (!st) return st;
    }
    *pages += vas.size();
    return Status::ok();
}

Result<std::uint64_t>
TenantRegistry::ensureResident(TenantHandle& tenant)
{
    if (!tenant.inner) return Err::Unavailable;
    os::Kernel& kernel = urts_->kernel();

    std::uint64_t reloaded = 0;
    // The dispatch path enters the whole chain, so the tenant's
    // ancestors must be resident too. Only subtree eviction ever pages
    // a gateway (or the root) out, so flat runs never take these.
    Status st = reloadEnclave(cvmRoot_, &reloaded);
    if (!st) return st;
    st = reloadEnclave(gateways_[tenant.gatewayIndex].outer, &reloaded);
    if (!st) return st;
    st = reloadEnclave(tenant.inner, &reloaded);
    if (!st) return st;
    if (reloaded == 0) return std::uint64_t(0);

    ++tenant.reloads;
    kernel.machine().trace().publishLight(
        trace::EventKind::ServeTenantReload, trace::kNoCore, 0, tenant.id,
        reloaded);
    return reloaded;
}

std::uint64_t
TenantRegistry::evictTenant(TenantHandle& tenant)
{
    // Never page out a tenant another worker thread is mid-batch in:
    // its owner holds `m` for the whole attempt. A contended victim is
    // reported as barren (0 pages) and the pressure loop moves on.
    std::unique_lock<std::mutex> own(tenant.m, std::try_to_lock);
    if (!own.owns_lock()) return 0;
    if (!tenant.inner) return 0;
    os::Kernel& kernel = urts_->kernel();
    const os::EnclaveRecord* rec =
        kernel.enclaveRecord(tenant.inner->secsPage());
    if (!rec) return 0;

    std::vector<hw::Vaddr> vas;
    vas.reserve(rec->pages.size());
    for (const auto& [va, pa] : rec->pages) vas.push_back(va);

    std::uint64_t written = 0;
    for (hw::Vaddr va : vas) {
        // TCS pages refuse EBLOCK; everything evictable goes out.
        if (kernel.evictPage(tenant.inner->secsPage(), va)) ++written;
    }
    if (written > 0) {
        ++tenant.evictions;
        kernel.machine().trace().publishLight(
            trace::EventKind::ServeTenantEvict, trace::kNoCore, 0, tenant.id,
            written);
    }
    return written;
}

Status
TenantRegistry::rebuildTenant(TenantHandle& tenant)
{
    Gateway& gateway = gateways_[tenant.gatewayIndex];
    if (!gateway.outer) {
        // A failed subtree rebuild left the gateway layer missing; the
        // tenant cannot come back without it. Double-checked under the
        // rebuild lock: a sibling's self-heal may already have restored
        // it, and two concurrent makeGateway calls would orphan one
        // gateway enclave (unevictable pages — eventual EPC exhaustion).
        std::lock_guard<std::mutex> g(gatewayRebuildM_);
        if (!gateway.outer) {
            auto rebuilt = makeGateway(tenant.gatewayIndex);
            if (!rebuilt) return rebuilt.status();
            gateway.outer = rebuilt.value().outer;
            gateway.state = std::move(rebuilt.value().state);
        }
    }
    if (tenant.inner) {
        // Detach from the gateway first so a failed unload cannot leave
        // the slot pointing at a half-dead enclave.
        sdk::LoadedEnclave* old = tenant.inner;
        gateway.state->slots[tenant.slot] = nullptr;
        tenant.inner = nullptr;
        Status st = urts_->unload(old);
        if (!st) {
            // Destroy refused (a page still busy): restore and report;
            // the worker retries on the tenant's next batch.
            tenant.inner = old;
            gateway.state->slots[tenant.slot] = old;
            return st;
        }
    }
    auto inner = buildInner(tenant.id, tenant.workload, gateway);
    if (!inner) return inner.status();  // stays inner-less; retried lazily
    if (tenant.provisioned) {
        // The client holds the EGETKEY-rooted session key; the fresh
        // instance must re-derive it or every post-rebuild reseal would
        // be refused. On failure the tenant stays inner-less (the rekey
        // entry itself can be hit by chaos faults) and is retried.
        Status rk = rekeyInner(inner.value());
        if (!rk) {
            (void)urts_->unload(inner.value());
            return rk;
        }
    }
    tenant.inner = inner.value();
    gateway.state->slots[tenant.slot] = inner.value();
    ++tenant.rebuilds;
    // In-enclave state was lost: clients must re-resolve placement (new
    // epoch) and learn it is a fresh incarnation (reseal from scratch).
    tenant.epoch.fetch_add(1, std::memory_order_relaxed);
    tenant.incarnation.fetch_add(1, std::memory_order_relaxed);
    urts_->machine().trace().publishLight(
        trace::EventKind::ServeTenantRebuild, trace::kNoCore, 0, tenant.id,
        tenant.rebuilds);
    return Status::ok();
}

std::uint64_t
TenantRegistry::evictSubtree(std::size_t gatewayIndex)
{
    if (gatewayIndex >= gateways_.size()) return 0;
    std::uint64_t written = 0;
    for (auto& [id, tenant] : tenants_) {
        if (tenant->gatewayIndex == gatewayIndex) {
            written += evictTenant(*tenant);
        }
    }
    Gateway& gateway = gateways_[gatewayIndex];
    if (!gateway.outer) return written;
    os::Kernel& kernel = urts_->kernel();
    const os::EnclaveRecord* rec =
        kernel.enclaveRecord(gateway.outer->secsPage());
    if (!rec) return written;
    std::vector<hw::Vaddr> vas;
    vas.reserve(rec->pages.size());
    for (const auto& [va, pa] : rec->pages) vas.push_back(va);
    for (hw::Vaddr va : vas) {
        if (kernel.evictPage(gateway.outer->secsPage(), va)) ++written;
    }
    return written;
}

Status
TenantRegistry::rebuildGatewaySubtree(std::size_t gatewayIndex,
                                      TenantHandle* alreadyLocked)
{
    if (gatewayIndex >= gateways_.size()) return Err::NotFound;
    Gateway& gateway = gateways_[gatewayIndex];

    // Own every tenant of the subtree for the whole teardown/rebuild so
    // the pressure manager (which try_locks from evictTenant) can never
    // page a half-dead enclave. The caller's own tenant is already held.
    std::vector<TenantHandle*> members;
    for (auto& [id, tenant] : tenants_) {
        if (tenant->gatewayIndex == gatewayIndex) {
            members.push_back(tenant.get());
        }
    }
    std::vector<std::unique_lock<std::mutex>> owned;
    owned.reserve(members.size());
    for (TenantHandle* tenant : members) {
        if (tenant != alreadyLocked) owned.emplace_back(tenant->m);
    }
    // After the tenant mutexes (lock order: tenant before gateway):
    // the gateway layer must not be torn down while a sibling's
    // self-heal is mid-recreate on the same index.
    std::lock_guard<std::mutex> gw(gatewayRebuildM_);

    // Leaves first: a gateway with live inner associations refuses
    // destruction.
    for (TenantHandle* tenant : members) {
        if (!tenant->inner) continue;
        sdk::LoadedEnclave* old = tenant->inner;
        gateway.state->slots[tenant->slot] = nullptr;
        tenant->inner = nullptr;
        Status st = urts_->unload(old);
        if (!st) {
            tenant->inner = old;
            gateway.state->slots[tenant->slot] = old;
            return st;
        }
    }
    if (gateway.outer) {
        sdk::LoadedEnclave* old = gateway.outer;
        gateway.outer = nullptr;
        Status st = urts_->unload(old);
        if (!st) {
            gateway.outer = old;
            return st;
        }
    }

    // Bottom-up rebuild: gateway (re-associated under the CVM root when
    // nested), then every tenant back into its old slot.
    auto rebuilt = makeGateway(gatewayIndex);
    if (!rebuilt) return rebuilt.status();  // whole subtree stays down
    gateway.outer = rebuilt.value().outer;
    gateway.state = std::move(rebuilt.value().state);

    Status result = Status::ok();
    for (TenantHandle* tenant : members) {
        auto inner = buildInner(tenant->id, tenant->workload, gateway);
        if (!inner) {
            // Inner-less until a later rebuild succeeds (same lazy-retry
            // contract as rebuildTenant); keep restoring the rest.
            result = inner.status();
            continue;
        }
        if (tenant->provisioned) {
            Status rk = rekeyInner(inner.value());
            if (!rk) {
                (void)urts_->unload(inner.value());
                result = rk;
                continue;
            }
        }
        tenant->inner = inner.value();
        gateway.state->slots[tenant->slot] = inner.value();
        ++tenant->rebuilds;
        tenant->epoch.fetch_add(1, std::memory_order_relaxed);
        tenant->incarnation.fetch_add(1, std::memory_order_relaxed);
        urts_->machine().trace().publishLight(
            trace::EventKind::ServeTenantRebuild, trace::kNoCore, 0,
            tenant->id, tenant->rebuilds);
    }
    if (result.isOk()) {
        // The subtree is whole again: a crashed marker on this gateway
        // has been healed by the rebuild.
        std::lock_guard<std::mutex> g(healthM_);
        crashedGateways_.erase(gatewayIndex);
    }
    return result;
}

Result<Bytes>
TenantRegistry::provisionInner(sdk::LoadedEnclave* inner,
                               const sgx::Measurement& verifierMr,
                               ByteView nonce)
{
    if (!inner) return Err::Unavailable;
    if (nonce.size() != attest::kNonceSize) return Err::BadCallBuffer;
    Bytes arg(1 + 32 + attest::kNonceSize);
    arg[0] = 1;
    std::copy(verifierMr.begin(), verifierMr.end(), arg.begin() + 1);
    std::copy(nonce.begin(), nonce.end(), arg.begin() + 33);
    return urts_->ecallChain(urts_->chainTo(inner), "tenant_provision", arg);
}

Status
TenantRegistry::rekeyInner(sdk::LoadedEnclave* inner)
{
    if (!inner) return Err::Unavailable;
    Bytes arg(1 + 32 + attest::kNonceSize, 0);
    auto r = urts_->ecallChain(urts_->chainTo(inner), "tenant_provision", arg);
    return r.status();
}

Result<Bytes>
TenantRegistry::exportInner(sdk::LoadedEnclave* inner,
                            const sgx::Measurement& dstMr)
{
    if (!inner) return Err::Unavailable;
    Bytes arg(dstMr.begin(), dstMr.end());
    return urts_->ecallChain(urts_->chainTo(inner), "tenant_export", arg);
}

Status
TenantRegistry::importInner(sdk::LoadedEnclave* inner,
                            const sgx::Measurement& srcMr, ByteView sealed)
{
    if (!inner) return Err::Unavailable;
    Bytes arg(srcMr.begin(), srcMr.end());
    append(arg, sealed);
    auto r = urts_->ecallChain(urts_->chainTo(inner), "tenant_import", arg);
    return r.status();
}

std::uint64_t
TenantRegistry::drainTenantLocked(TenantHandle& tenant)
{
    if (!tenant.inner) return 0;
    os::Kernel& kernel = urts_->kernel();
    const os::EnclaveRecord* rec =
        kernel.enclaveRecord(tenant.inner->secsPage());
    if (!rec) return 0;
    std::vector<hw::Vaddr> vas;
    vas.reserve(rec->pages.size());
    for (const auto& [va, pa] : rec->pages) vas.push_back(va);
    std::uint64_t written = 0;
    for (hw::Vaddr va : vas) {
        if (kernel.evictPage(tenant.inner->secsPage(), va)) ++written;
    }
    return written;
}

Result<std::size_t>
TenantRegistry::pickGatewayExcept(std::size_t exclude)
{
    for (std::size_t i = 0; i < gateways_.size(); ++i) {
        if (i == exclude) continue;
        if (gateways_[i].outer != nullptr &&
            gateways_[i].tenantCount < config_.tenantsPerOuter) {
            return i;
        }
    }
    auto gw = makeGateway(gateways_.size());
    if (!gw) return gw.status();
    gateways_.push_back(std::move(gw.value()));
    return gateways_.size() - 1;
}

Result<TenantRegistry::RelocationTicket>
TenantRegistry::stageRelocation(TenantHandle& tenant,
                                std::size_t targetGateway)
{
    if (targetGateway >= gateways_.size() ||
        targetGateway == tenant.gatewayIndex) {
        return Err::NotFound;
    }
    Gateway& gateway = gateways_[targetGateway];
    if (!gateway.outer || gateway.tenantCount >= config_.tenantsPerOuter) {
        return Err::Backpressure;
    }
    std::uint32_t slot = 0;
    while (slot < gateway.state->slots.size() &&
           gateway.state->slots[slot] != nullptr) {
        ++slot;
    }
    if (slot >= gateway.state->slots.size()) return Err::Backpressure;

    auto inner = buildInner(tenant.id, tenant.workload, gateway);
    if (!inner) return inner.status();  // source untouched, still serving

    RelocationTicket ticket;
    ticket.gatewayIndex = targetGateway;
    ticket.slot = slot;
    ticket.inner = inner.value();
    // Claim the slot now so a concurrent ensure() cannot take it; the
    // ticket is either committed or abandoned before dispatches see it.
    gateway.state->slots[slot] = inner.value();
    ++gateway.tenantCount;
    return ticket;
}

void
TenantRegistry::abandonRelocation(const RelocationTicket& ticket)
{
    Gateway& gateway = gateways_[ticket.gatewayIndex];
    gateway.state->slots[ticket.slot] = nullptr;
    --gateway.tenantCount;
    (void)urts_->unload(ticket.inner);
}

Status
TenantRegistry::commitRelocation(TenantHandle& tenant,
                                 const RelocationTicket& ticket)
{
    Gateway& source = gateways_[tenant.gatewayIndex];
    if (tenant.inner) {
        sdk::LoadedEnclave* old = tenant.inner;
        source.state->slots[tenant.slot] = nullptr;
        tenant.inner = nullptr;
        Status st = urts_->unload(old);
        if (!st) {
            // Source teardown refused (busy page): roll the swap back;
            // the staged instance is abandoned by the caller.
            tenant.inner = old;
            source.state->slots[tenant.slot] = old;
            return st;
        }
    }
    --source.tenantCount;
    tenant.inner = ticket.inner;
    tenant.gatewayIndex = ticket.gatewayIndex;
    tenant.slot = ticket.slot;
    ++tenant.migrations;
    // Placement changed but the session survived the move: new epoch,
    // same incarnation (clients keep their key and sequence counter).
    tenant.epoch.fetch_add(1, std::memory_order_relaxed);
    urts_->machine().trace().publishLight(
        trace::EventKind::ServeTenantMigrate, trace::kNoCore, 0, tenant.id,
        0);
    return Status::ok();
}

Status
TenantRegistry::retireTenant(TenantId id)
{
    auto it = tenants_.find(id);
    if (it == tenants_.end()) return Err::NotFound;
    TenantHandle* tenant = it->second.get();
    {
        // Scoped: the handle (and its mutex) dies with the map entry.
        std::lock_guard<std::mutex> own(tenant->m);
        if (tenant->inner) {
            Gateway& gateway = gateways_[tenant->gatewayIndex];
            sdk::LoadedEnclave* old = tenant->inner;
            gateway.state->slots[tenant->slot] = nullptr;
            tenant->inner = nullptr;
            Status st = urts_->unload(old);
            if (!st) {
                tenant->inner = old;
                gateway.state->slots[tenant->slot] = old;
                return st;
            }
            --gateway.tenantCount;
        }
    }
    tenants_.erase(it);
    return Status::ok();
}

TenantHandle*
TenantRegistry::tenantBySecs(hw::Paddr secsPage)
{
    for (auto& [id, tenant] : tenants_) {
        if (tenant->inner && tenant->inner->secsPage() == secsPage) {
            return tenant.get();
        }
    }
    return nullptr;
}

}  // namespace nesgx::serve
