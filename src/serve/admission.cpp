#include "serve/admission.h"

namespace nesgx::serve {

Status
AdmissionController::submit(TenantId tenant, Bytes sealed)
{
    std::lock_guard<std::mutex> g(m_);
    std::deque<Request>& queue = queues_[tenant];
    if (queue.size() >= config_.maxQueueDepth) {
        ++rejected_;
        return Err::Backpressure;
    }
    Request req;
    req.id = nextId_++;
    req.tenant = tenant;
    req.enqueuedAt = machine_->clock().cycles();
    if (config_.deadlineCycles > 0) {
        req.deadline = req.enqueuedAt + config_.deadlineCycles;
    }
    req.sealed = std::move(sealed);
    queue.push_back(std::move(req));
    totalQueued_.fetch_add(1, std::memory_order_relaxed);
    ++submitted_;
    machine_->trace().publishLight(trace::EventKind::ServeEnqueue,
                                   trace::kNoCore, 0, tenant, queue.size());
    return Status::ok();
}

std::vector<Request>
AdmissionController::takeBatch(TenantId tenant, std::size_t max,
                               std::vector<Request>* shedOut)
{
    std::vector<Request> out;
    std::lock_guard<std::mutex> g(m_);
    auto it = queues_.find(tenant);
    if (it == queues_.end()) return out;
    std::deque<Request>& queue = it->second;
    const std::uint64_t now = machine_->clock().cycles();

    while (!queue.empty() && out.size() < max) {
        Request& head = queue.front();
        if (head.deadline != 0 && now > head.deadline) {
            // One event per shed request (arg1 = 1 keeps the counter
            // fold additive), and the request itself goes back to the
            // caller for a typed Err::Deadline completion — a batch
            // whose every entry expired must not vanish silently.
            ++shed_;
            machine_->trace().publishLight(trace::EventKind::ServeShed,
                                           trace::kNoCore, 0, tenant, 1);
            if (shedOut) shedOut->push_back(std::move(head));
        } else {
            out.push_back(std::move(head));
        }
        queue.pop_front();
        totalQueued_.fetch_sub(1, std::memory_order_relaxed);
    }
    return out;
}

std::vector<Request>
AdmissionController::purge(TenantId tenant)
{
    std::vector<Request> out;
    std::lock_guard<std::mutex> g(m_);
    auto it = queues_.find(tenant);
    if (it == queues_.end()) return out;
    out.reserve(it->second.size());
    for (Request& r : it->second) out.push_back(std::move(r));
    totalQueued_.fetch_sub(it->second.size(), std::memory_order_relaxed);
    it->second.clear();
    return out;
}

std::optional<TenantId>
AdmissionController::nextTenant()
{
    if (totalQueued() == 0) return std::nullopt;
    std::lock_guard<std::mutex> g(m_);
    // Start scanning just past the previously served tenant, wrapping.
    auto start = haveLast_ ? queues_.upper_bound(lastTenant_)
                           : queues_.begin();
    for (auto it = start; it != queues_.end(); ++it) {
        if (!it->second.empty()) {
            lastTenant_ = it->first;
            haveLast_ = true;
            return it->first;
        }
    }
    for (auto it = queues_.begin(); it != start; ++it) {
        if (!it->second.empty()) {
            lastTenant_ = it->first;
            haveLast_ = true;
            return it->first;
        }
    }
    return std::nullopt;
}

std::size_t
AdmissionController::depth(TenantId tenant) const
{
    std::lock_guard<std::mutex> g(m_);
    auto it = queues_.find(tenant);
    return it == queues_.end() ? 0 : it->second.size();
}

}  // namespace nesgx::serve
