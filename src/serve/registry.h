/**
 * TenantRegistry: one inner enclave per tenant, lazily instantiated
 * inside a pool of shared outer "gateway" enclaves.
 *
 * The deployment shape is the paper's §VI library model turned into a
 * multi-tenant service: every gateway outer holds the shared request
 * plumbing (staging buffers, batch framing) and is signed to accept any
 * inner by the service author's MRSIGNER, so tenants can be created
 * *after* the outer is built and EINITed — NASSO's signer expectation is
 * what admits them. Each gateway takes at most `tenantsPerOuter`
 * tenants; the next tenant spills over into a freshly built gateway.
 *
 * A dispatch is one EENTER into the gateway plus one NEENTER into the
 * tenant's inner regardless of how many requests ride in the batch: the
 * gateway stages the sealed batch into its own heap and hands the inner
 * a [va, len] descriptor, and the inner reads/writes that staging region
 * in place through the nested access-validation path (by-reference
 * sharing, §IV-A).
 *
 * The registry also owns tenant-granular paging: evictTenant writes a
 * tenant's evictable inner pages out through EBLOCK/ETRACK/EWB, and
 * ensureResident transparently ELDUs them back before the next
 * dispatch touches the enclave.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "core/compose.h"
#include "sdk/runtime.h"
#include "serve/protocol.h"
#include "support/counter.h"

namespace nesgx::serve {

/** Deployment shape of the enclave fleet. */
enum class Topology {
    /** Gateways are depth-1 roots, tenants depth-2 inners (historical
     *  two-level layout; byte-identical to the pre-topology registry). */
    Flat,
    /** A single depth-1 "CVM" root enclave hosts every gateway as a
     *  depth-2 inner, and tenants sit at depth 3 under their gateway —
     *  the paper's §VIII arbitrary-depth nesting as a served tree. A
     *  dispatch is one EENTER into the CVM plus one NEENTER per hop. */
    Cvm,
};

struct TenantHandle {
    TenantId id = 0;
    Workload workload = Workload::Echo;
    /** Inner enclave; nullptr while a poisoned tenant awaits rebuild. */
    sdk::LoadedEnclave* inner = nullptr;
    std::size_t gatewayIndex = 0;
    std::uint32_t slot = 0;  ///< slot within the gateway
    /**
     * Ownership lock for threaded serving. The worker thread that owns
     * this tenant (gatewayIndex % threads) holds it across the whole
     * batch attempt — residency, dispatch, rebuild — while the pressure
     * manager only ever try_locks it from `evictTenant` and skips a
     * contended victim. try_lock is what makes the cross-thread order
     * (own tenant held -> victim tenant tried) deadlock-free.
     */
    std::mutex m;
    /** A dispatch is in flight. Read lock-free by the eviction victim
     *  filter on other worker threads; `m` is the real exclusion. */
    std::atomic<bool> busy{false};
    /** The inner holds an EGETKEY-rooted session key (installed by a
     *  provisioning ecall); rebuilds must re-run provisioning so the
     *  fresh instance re-derives the same key the client still holds. */
    bool provisioned = false;
    /** Onboarding attestation passed (service layer sets this; dispatch
     *  refuses unverified tenants when Config::requireVerification). */
    bool verified = false;
    Counter evictions;  ///< times paged out by pressure
    Counter reloads;    ///< cold-start reloads
    Counter rebuilds;   ///< destroy-and-rebuild recoveries
    Counter migrations; ///< live relocations (gateway or host moves)
    /**
     * Placement epoch: monotonically bumped by every rebuild, subtree
     * rebuild and committed relocation. Epoch-fenced submits compare a
     * client's stamped epoch against this and refuse stale ones with
     * Err::WrongEpoch, so a client can never silently talk past a move.
     */
    std::atomic<std::uint64_t> epoch{1};
    /** Incarnation: bumps only when in-enclave state was lost (tenant or
     *  subtree rebuild), never on a live relocation — re-resolving
     *  clients use it to decide whether to reseal from scratch. */
    std::atomic<std::uint64_t> incarnation{1};
    Counter okServed;   ///< verified-ok completions (supervisor heartbeat)
    Counter wrongEpochs; ///< stale-epoch submits refused
};

class TenantRegistry {
  public:
    struct Config {
        std::uint32_t tenantsPerOuter = 4;
        /** Inner (per-tenant) enclave shape. */
        std::uint64_t innerCodePages = 8;
        std::uint64_t innerHeapPages = 16;
        /** Outer (gateway) enclave shape. */
        std::uint64_t outerCodePages = 24;
        std::uint64_t outerHeapPages = 48;
        /** Thread slots per enclave. The switchless layer parks poller
         *  threads on real TCSes — one per gateway poller plus one per
         *  tenant poller entering through the gateway — so it needs
         *  headroom beyond the classic one-dispatch-at-a-time shape. */
        std::uint32_t gatewayTcs = 2;
        std::uint32_t innerTcs = 1;
        /** Fleet shape; Cvm inserts a shared depth-1 root above the
         *  gateways (see Topology). */
        Topology topology = Topology::Flat;
        /** CVM root enclave shape (Cvm topology only). The TCS pool must
         *  cover every concurrent entry into the tree: one per worker
         *  thread plus — under switchless — one per parked poller
         *  (root + per-gateway + per-tenant), so callers size it to
         *  roughly tenants + gateways + threads + spare. */
        std::uint64_t cvmCodePages = 24;
        std::uint64_t cvmHeapPages = 64;
        std::uint32_t cvmTcs = 4;
        /** Refuse dispatch to tenants that have not passed onboarding
         *  attestation (TenantHandle::verified). Off by default so the
         *  raw registry stays usable without the trust path. */
        bool requireVerification = false;
    };

    TenantRegistry(sdk::Urts& urts, Config config);

    /** Hook run before any enclave build: make `pages` EPC pages free
     *  (the pressure manager installs itself here). */
    void setEpcReserve(std::function<Status(std::uint64_t)> hook)
    {
        epcReserve_ = std::move(hook);
    }

    /** Existing tenant or nullptr (never instantiates). */
    TenantHandle* find(TenantId id);

    /** Lazily instantiates the tenant's inner (and a gateway if the
     *  current one is full). */
    Result<TenantHandle*> ensure(TenantId id, Workload workload);

    /** One batched round trip: EENTER gateway, NEENTER inner, responses
     *  staged back by reference. `blob` is a packBatch() for this
     *  tenant's slot. */
    Result<Bytes> dispatch(TenantHandle& tenant, ByteView blob,
                           hw::CoreId core);

    /** ELDUs every evicted page of the tenant's inner back in. Returns
     *  the number of pages reloaded (0 = was already resident). */
    Result<std::uint64_t> ensureResident(TenantHandle& tenant);

    /** Pages the tenant's inner out (best effort: TCS/pinned pages are
     *  skipped). Returns pages actually written back. */
    std::uint64_t evictTenant(TenantHandle& tenant);

    /** Destroys a poisoned tenant's inner and builds a fresh one into
     *  the same gateway slot. Sequence state, sql tables, everything
     *  in-enclave is lost — the client must reseal from scratch. On
     *  failure the tenant is left inner-less (`inner == nullptr`) and
     *  quarantined until a later rebuild succeeds. */
    Status rebuildTenant(TenantHandle& tenant);

    /**
     * Pages the whole gateway subtree out: every tenant inner of the
     * gateway plus the gateway enclave's own evictable pages. Returns
     * pages written back; ensureResident reloads the chain transparently
     * before the next dispatch.
     */
    std::uint64_t evictSubtree(std::size_t gatewayIndex);

    /**
     * Destroys and rebuilds a whole gateway subtree: every tenant inner
     * of the gateway, then the gateway enclave itself, then fresh
     * instances bottom-up (gateway first, tenants re-associated into
     * it). The recovery of last resort when the gateway layer itself is
     * the casualty — every tenant of the subtree loses its in-enclave
     * state exactly as rebuildTenant would lose one.
     *
     * `alreadyLocked` names a tenant whose `m` the caller holds (the
     * worker mid-batch); every other tenant of the subtree is locked
     * here so the pressure manager cannot evict a half-dead enclave.
     * On partial failure affected tenants are left inner-less and are
     * retried lazily, same contract as rebuildTenant.
     */
    Status rebuildGatewaySubtree(std::size_t gatewayIndex,
                                 TenantHandle* alreadyLocked = nullptr);

    // --- trust path / migration (registry side) --------------------------

    /**
     * Runs the in-enclave provisioning ecall on `inner` through its full
     * ancestor chain: the enclave derives its EGETKEY-rooted session key,
     * installs it (resetting replay state), and returns an encoded
     * NEREPORT evidence blob MAC'ed for `verifierMr` whose reportData
     * binds SHA256(nonce) || SHA256(sessionKey).
     */
    Result<Bytes> provisionInner(sdk::LoadedEnclave* inner,
                                 const sgx::Measurement& verifierMr,
                                 ByteView nonce);

    /** Re-derives and installs the session key only (no evidence): the
     *  rebuild path's way to keep a verified tenant's key stable. */
    Status rekeyInner(sdk::LoadedEnclave* inner);

    /** In-enclave export: the inner seals its TenantSnapshot under a
     *  migration transport key bound to destination identity `dstMr`. */
    Result<Bytes> exportInner(sdk::LoadedEnclave* inner,
                              const sgx::Measurement& dstMr);

    /** In-enclave import: the inner opens a snapshot sealed by source
     *  identity `srcMr` and resumes the session (key, replay counter,
     *  journal-replayed database). */
    Status importInner(sdk::LoadedEnclave* inner,
                       const sgx::Measurement& srcMr, ByteView sealed);

    /** EWB-drains the tenant's inner pages (caller holds `tenant.m`).
     *  Returns pages written back. */
    std::uint64_t drainTenantLocked(TenantHandle& tenant);

    /** A staged-but-uncommitted destination instance of a relocation. */
    struct RelocationTicket {
        std::size_t gatewayIndex = 0;
        std::uint32_t slot = 0;
        sdk::LoadedEnclave* inner = nullptr;
    };

    /** A gateway with a free slot other than `exclude` (building a fresh
     *  one if every other gateway is full). */
    Result<std::size_t> pickGatewayExcept(std::size_t exclude);

    /** Builds a fresh inner for `tenant` inside `targetGateway` without
     *  touching the live one — the destination half of a migration. The
     *  source keeps serving until commitRelocation(). */
    Result<RelocationTicket> stageRelocation(TenantHandle& tenant,
                                             std::size_t targetGateway);

    /** Destroys a staged destination instance (migration abort). */
    void abandonRelocation(const RelocationTicket& ticket);

    /** Tears down the source instance and swaps the staged one in;
     *  `tenant` now lives in the ticket's gateway slot. */
    Status commitRelocation(TenantHandle& tenant,
                            const RelocationTicket& ticket);

    /** Unloads a tenant's inner and forgets the tenant entirely (the
     *  source half of a cross-host move, or an onboarding rejection). */
    Status retireTenant(TenantId id);

    /** Tenant owning this inner SECS, or nullptr (victim filtering). */
    TenantHandle* tenantBySecs(hw::Paddr secsPage);

    // --- failure-domain health markers -----------------------------------

    /** Marks a gateway crashed: every data-plane dispatch through it
     *  refuses with Err::Unavailable until rebuildGatewaySubtree brings
     *  the subtree back (which clears the marker). The gateway-crash
     *  fault site sets this from the dispatch path. */
    void crashGateway(std::size_t index);
    bool gatewayCrashed(std::size_t index) const;

    /** Marks the whole host degraded: the data plane refuses while the
     *  control plane (provision/export/import/rebuild) keeps working, so
     *  a supervisor can still evacuate tenants off the dying host. */
    void setDegraded(bool on)
    {
        degraded_.store(on, std::memory_order_relaxed);
    }
    bool degraded() const
    {
        return degraded_.load(std::memory_order_relaxed);
    }

    std::size_t gatewayCount() const { return gateways_.size(); }
    std::size_t tenantCount() const { return tenants_.size(); }
    Topology topology() const { return config_.topology; }

    /** The shared depth-1 root (Cvm topology; nullptr under Flat). */
    sdk::LoadedEnclave* cvmRoot() { return cvmRoot_; }

    /**
     * Root-first dispatch chain for the tenant's endpoint: {cvm,
     * gateway, inner} under Cvm, empty under Flat (callers fall back to
     * the classic {outer, inner} pair, keeping flat byte-identity).
     */
    std::vector<sdk::LoadedEnclave*> dispatchChain(const TenantHandle& tenant);

    /** Gateway outer enclave by index (switchless endpoint resolution). */
    sdk::LoadedEnclave* gatewayOuter(std::size_t index)
    {
        return index < gateways_.size() ? gateways_[index].outer : nullptr;
    }

    /** All tenants, by id (switchless arming sweep). */
    const std::map<TenantId, std::unique_ptr<TenantHandle>>& tenants() const
    {
        return tenants_;
    }

    sdk::Urts& urts() { return *urts_; }

  private:
    /** Per-gateway state shared with the gateway's ecall lambda. */
    struct GatewayState {
        hw::Vaddr stagingVa = 0;
        std::uint64_t stagingCap = 0;
        std::vector<sdk::LoadedEnclave*> slots;
    };

    struct Gateway {
        sdk::LoadedEnclave* outer = nullptr;
        std::shared_ptr<GatewayState> state;
        std::uint32_t tenantCount = 0;
    };

    Status reserveEpc(std::uint64_t pages);
    Result<std::size_t> gatewayWithRoom();
    /** Builds (or rebuilds) the gateway enclave for `index` without
     *  touching the gateways_ vector; Cvm associates it under the root. */
    Result<Gateway> makeGateway(std::size_t index);
    /** Lazily builds the shared CVM root (Cvm topology). */
    Status ensureCvmRoot();
    /** Reloads every evicted page of `enclave` (chain residency). */
    Status reloadEnclave(sdk::LoadedEnclave* enclave, std::uint64_t* pages);
    Result<sdk::LoadedEnclave*> buildInner(TenantId id, Workload workload,
                                           Gateway& gateway);

    sdk::Urts* urts_;
    Config config_;
    std::function<Status(std::uint64_t)> epcReserve_;
    sdk::LoadedEnclave* cvmRoot_ = nullptr;
    std::vector<Gateway> gateways_;
    std::map<TenantId, std::unique_ptr<TenantHandle>> tenants_;
    /** Crash markers are read on every dispatch from every worker
     *  thread; a small mutex keeps the set coherent (the hot path takes
     *  it once per batch, not per request). */
    mutable std::mutex healthM_;
    /** Serializes gateway-layer reconstruction. Two workers self-healing
     *  different tenants of the same downed gateway (each under its own
     *  tenant mutex only) would otherwise both makeGateway and the
     *  second assignment would orphan the first's enclave — pages the
     *  pressure manager can never evict. Ordering: tenant mutexes are
     *  always taken before this one, never after. */
    std::mutex gatewayRebuildM_;
    std::set<std::size_t> crashedGateways_;
    std::atomic<bool> degraded_{false};
};

}  // namespace nesgx::serve
