#include "serve/service.h"

#include <algorithm>
#include <set>
#include <thread>

#include "support/logging.h"

namespace nesgx::serve {

namespace {

/** Errors that mean the tenant's inner enclave state can no longer be
 *  trusted or reached: a retry against the same instance is pointless,
 *  only destroy-and-rebuild recovers. */
bool
poisonedStatus(Status st)
{
    switch (st.code()) {
      case Err::PagingIntegrity:
      case Err::InvalidEpcPage:
      case Err::PageFault:
        return true;
      default:
        return false;
    }
}

}  // namespace

Status
EpcPressureManager::ensureFree(std::uint64_t pages)
{
    // Tenants whose eviction freed nothing this round (fully pinned):
    // excluded so the loop cannot spin on them.
    std::set<hw::Paddr> barren;
    while (kernel_->freeEpcPages() < pages) {
        auto victim = kernel_->pickEvictVictim([&](hw::Paddr secs) {
            if (barren.count(secs)) return false;
            TenantHandle* tenant = registry_->tenantBySecs(secs);
            return tenant != nullptr && !tenant->busy;
        });
        if (!victim) return Err::OsError;
        TenantHandle* tenant = registry_->tenantBySecs(victim.value());
        std::uint64_t written = registry_->evictTenant(*tenant);
        if (written == 0) {
            barren.insert(victim.value());
            continue;
        }
        ++tenantsEvicted_;
        pagesWritten_ += written;
    }
    return Status::ok();
}

void
EpcPressureManager::relieve()
{
    Status st = ensureFree(config_.lowWatermarkPages);
    if (st) return;
    ++watermarkMisses_;
    const std::uint64_t free = kernel_->freeEpcPages();
    NESGX_WARN << "epc pressure: watermark miss ("
               << config_.lowWatermarkPages << " wanted, " << free
               << " free, " << st.name() << ")";
    registry_->urts().machine().trace().publishLight(
        trace::EventKind::ServeWatermarkMiss, trace::kNoCore, 0,
        config_.lowWatermarkPages, free);
}

WorkerPool::WorkerPool(TenantRegistry& registry,
                       AdmissionController& admission,
                       EpcPressureManager& pressure, Config config)
    : registry_(&registry), admission_(&admission), pressure_(&pressure),
      config_(config)
{
    if (config_.cores == 0) {
        config_.cores = registry.urts().machine().coreCount();
    }
}

bool
WorkerPool::breakerOpen(TenantId tenant) const
{
    std::lock_guard<std::mutex> g(breakersM_);
    auto it = breakers_.find(tenant);
    return it != breakers_.end() && it->second.open;
}

WorkerPool::Breaker&
WorkerPool::breakerFor(TenantId tenant)
{
    std::lock_guard<std::mutex> g(breakersM_);
    return breakers_[tenant];
}

void
WorkerPool::failQueuedRebuilt(TenantId tenantId)
{
    sgx::Machine& machine = registry_->urts().machine();
    std::lock_guard<std::mutex> c(completionsM_);
    for (Request& r : admission_->purge(tenantId)) {
        Completion done;
        done.id = r.id;
        done.tenant = r.tenant;
        done.latencyCycles = machine.clock().cycles() - r.enqueuedAt;
        done.status = Err::Unavailable;
        done.tenantRebuilt = true;
        completions_.push_back(std::move(done));
    }
}

Status
WorkerPool::rebuildTenantNow(TenantHandle& tenant)
{
    sgx::Machine& machine = registry_->urts().machine();
    // The switchless channel's poller is parked inside the inner that is
    // about to be destroyed: drain-or-poison its rings and unpark it
    // first, or EREMOVE would refuse the busy TCS pages forever.
    if (engine_) engine_->disarm(tenant.id);
    // Everything the tenant still has queued was sealed against the
    // poisoned instance; fail it typed so the client reseals against
    // the rebuilt server instead of replaying stale sequence numbers.
    failQueuedRebuilt(tenant.id);
    const std::uint64_t begin = machine.clock().cycles();
    Status st = registry_->rebuildTenant(tenant);
    if (!st && registry_->topology() == Topology::Cvm) {
        // Cvm escalation: the tenant refused to come back on its own —
        // the gateway layer itself may be the casualty, so rebuild the
        // whole subtree. Sibling tenants' pollers and queued requests
        // ride on instances about to be destroyed; disarm and fail them
        // typed first, exactly like the caller's own.
        for (const auto& [id, sibling] : registry_->tenants()) {
            if (sibling->gatewayIndex != tenant.gatewayIndex ||
                sibling.get() == &tenant) {
                continue;
            }
            if (engine_) engine_->disarm(id);
            failQueuedRebuilt(id);
        }
        st = registry_->rebuildGatewaySubtree(tenant.gatewayIndex, &tenant);
        ++subtreeRebuilds_;
        machine.trace().publishLight(trace::EventKind::ServeTenantRebuild,
                                     trace::kNoCore, 0, tenant.id,
                                     tenant.gatewayIndex);
    }
    {
        std::lock_guard<std::mutex> h(rebuildM_);
        rebuildLatency_.add(machine.clock().cycles() - begin);
    }
    ++rebuilds_;
    return st;
}

Status
WorkerPool::rebuildTenant(TenantHandle& tenant)
{
    std::lock_guard<std::mutex> own(tenant.m);
    return rebuildTenantNow(tenant);
}

Status
WorkerPool::rebuildSubtree(std::size_t gatewayIndex)
{
    sgx::Machine& machine = registry_->urts().machine();
    const std::uint64_t begin = machine.clock().cycles();
    // Every member's poller parks inside an instance about to be torn
    // down, and every queued request was sealed against one: disarm and
    // fail typed first, same contract as the in-batch Cvm escalation.
    for (const auto& [id, member] : registry_->tenants()) {
        if (member->gatewayIndex != gatewayIndex) continue;
        if (engine_) engine_->disarm(id);
        failQueuedRebuilt(id);
    }
    Status st = registry_->rebuildGatewaySubtree(gatewayIndex);
    ++subtreeRebuilds_;
    {
        std::lock_guard<std::mutex> h(rebuildM_);
        rebuildLatency_.add(machine.clock().cycles() - begin);
    }
    return st;
}

Result<Bytes>
WorkerPool::dispatchVia(TenantHandle& tenant, ByteView blob, hw::CoreId core)
{
    if (engine_ != nullptr && tenant.inner != nullptr) {
        switchless::Endpoint ep;
        ep.outer = registry_->gatewayOuter(tenant.gatewayIndex);
        ep.inner = tenant.inner;
        ep.innerCall = "serve_batch";
        ep.slot = tenant.slot;
        // Cvm topology: route rings through the full ancestor chain
        // (empty chain = the classic two-tier shape, flat unchanged).
        ep.chain = registry_->dispatchChain(tenant);
        if (engine_->ready(tenant.id, ep)) {
            return engine_->call(tenant.id, ep, blob, core);
        }
        // Arming failed (cores/TCSes/heap exhausted): degrade to the
        // classic transition-paying path, never refuse the batch.
    }
    return registry_->dispatch(tenant, blob, core);
}

bool
WorkerPool::step()
{
    auto tenantId = admission_->nextTenant();
    if (!tenantId) return false;
    processTenant(*tenantId, 0, false);
    return true;
}

hw::CoreId
WorkerPool::pickCore()
{
    const hw::CoreId core = nextCore_;
    nextCore_ = (nextCore_ + 1) % config_.cores;
    return core;
}

void
WorkerPool::processTenant(TenantId tenantId, hw::CoreId fixedCore,
                          bool haveFixedCore)
{
    sgx::Machine& machine = registry_->urts().machine();

    std::vector<Request> shedRequests;
    std::vector<Request> batch =
        admission_->takeBatch(tenantId, config_.batchSize, &shedRequests);

    // Shed requests complete typed — the client sees Err::Deadline, not
    // silence — even (especially) when every entry at the head expired
    // and the batch below is empty.
    if (!shedRequests.empty()) {
        const std::uint64_t shedNow = machine.clock().cycles();
        std::lock_guard<std::mutex> c(completionsM_);
        for (Request& r : shedRequests) {
            Completion done;
            done.id = r.id;
            done.tenant = r.tenant;
            done.latencyCycles = shedNow - r.enqueuedAt;
            done.status = Err::Deadline;
            completions_.push_back(std::move(done));
        }
    }
    if (batch.empty()) return;  // everything at the head was shed

    TenantHandle* tenant = registry_->find(tenantId);
    if (!tenant) return;  // submit() guarantees existence

    serveBatch(*tenant, std::move(batch), fixedCore, haveFixedCore);

    // Restore the EPC watermark before the next tenant needs pages.
    pressure_->relieve();
}

void
WorkerPool::serveBatch(TenantHandle& tenant, std::vector<Request> batch,
                       hw::CoreId fixedCore, bool haveFixedCore)
{
    sgx::Machine& machine = registry_->urts().machine();

    // Own the tenant for the whole attempt: residency, dispatch and
    // rebuild all happen under this lock, so the pressure manager (which
    // only try_locks from evictTenant) can never page out a tenant that
    // is mid-batch on another thread.
    std::lock_guard<std::mutex> own(tenant.m);

    auto failBatchTyped = [&](Status st, bool rebuiltFlag) {
        const std::uint64_t now = machine.clock().cycles();
        std::lock_guard<std::mutex> c(completionsM_);
        for (Request& r : batch) {
            Completion done;
            done.id = r.id;
            done.tenant = r.tenant;
            done.latencyCycles = now - r.enqueuedAt;
            done.status = st;
            done.tenantRebuilt = rebuiltFlag;
            completions_.push_back(std::move(done));
        }
    };

    // Circuit breaker: while open, refuse the batch outright unless the
    // cooldown has elapsed — then exactly this batch goes through as the
    // half-open probe.
    Breaker& breaker = breakerFor(tenant.id);
    if (breaker.open) {
        bool probeDue = false;
#ifndef NESGX_BUG_BREAKER_STUCK
        probeDue = machine.clock().cycles() >= breaker.probeAt;
#endif
        if (!probeDue) {
            failBatchTyped(Err::Unavailable, false);
            return;
        }
    }

    Status finalStatus = Err::Unavailable;
    std::vector<Bytes> responses;
    bool dispatched = false;
    bool rebuilt = false;

    for (std::uint32_t attempt = 0; attempt <= config_.maxRetries;
         ++attempt) {
        if (attempt > 0) {
            ++retries_;
            machine.trace().publishLight(trace::EventKind::ServeRetry,
                                         trace::kNoCore, 0, tenant.id,
                                         attempt);
        }

        // A previous rebuild died half-way (e.g. the EPC allocator
        // refused mid-build): the tenant is inner-less until a build
        // succeeds. Keep trying under the same retry budget.
        if (!tenant.inner) {
            rebuilt = true;
            Status st = rebuildTenantNow(tenant);
            if (!st) {
                finalStatus = st;
                continue;
            }
        }

        // Transparent cold start: page the inner back in before
        // entering. Pinned (`busy`) so the pressure manager cannot pick
        // this tenant as an eviction victim mid-reload.
        tenant.busy = true;
        auto resident = registry_->ensureResident(tenant);
        tenant.busy = false;
        if (!resident) {
            finalStatus = resident.status();
            if (poisonedStatus(finalStatus)) {
                rebuilt = true;
                (void)rebuildTenantNow(tenant);
                break;  // seals target the dead instance: no redispatch
            }
            continue;
        }

        const hw::CoreId core = haveFixedCore ? fixedCore : pickCore();

        std::vector<ByteView> views;
        views.reserve(batch.size());
        for (const Request& req : batch) views.push_back(req.sealed);
        Bytes blob = packBatch(tenant.slot, views);

        trace::TraceEvent begin;
        begin.kind = trace::EventKind::ServeBatchBegin;
        begin.core = core;
        begin.arg0 = tenant.id;
        begin.arg1 = batch.size();
        machine.trace().publishIfActive(begin);

        tenant.busy = true;
        auto respBlob = dispatchVia(tenant, blob, core);
        tenant.busy = false;

        machine.trace().publishLight(trace::EventKind::ServeBatchEnd, core,
                                     0, tenant.id, batch.size());
        ++batches_;

        if (!respBlob) {
            finalStatus = respBlob.status();
            if (poisonedStatus(finalStatus)) {
                rebuilt = true;
                (void)rebuildTenantNow(tenant);
                break;
            }
            continue;
        }
        auto parsed = parseResponses(respBlob.value());
        if (!parsed) {
            finalStatus = parsed.status();
            continue;
        }
        if (parsed.value().size() != batch.size()) {
            finalStatus = Err::BadCallBuffer;
            continue;
        }
        responses = std::move(parsed.value());
        dispatched = true;
        break;
    }

    const std::uint64_t now = machine.clock().cycles();
    if (dispatched) {
        std::lock_guard<std::mutex> c(completionsM_);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            Completion done;
            done.id = batch[i].id;
            done.tenant = batch[i].tenant;
            done.sealedResponse = std::move(responses[i]);
            done.latencyCycles = now - batch[i].enqueuedAt;
            done.ok = !done.sealedResponse.empty();
            // Deliberately NOT rebuilt-flagged: a batch that round-trips
            // after a lazy rebuild was sealed against the fresh instance
            // (the client resealed when the rebuild was first reported),
            // so telling the client to reset again would wipe the very
            // expectations these responses verify against.
            if (done.ok) {
                ++served_;
                ++tenant.okServed;  // supervisor liveness heartbeat
            } else {
                // The batch round-tripped but the server refused this
                // request (bad seal, or a sequence already consumed by a
                // partially-processed earlier attempt).
                done.status = Err::SealRejected;
            }
            completions_.push_back(std::move(done));
        }
    } else {
        ++dispatchFailures_;
        failBatchTyped(finalStatus, rebuilt);
    }

    // Breaker bookkeeping observes the batch outcome: any round trip
    // counts as healthy (per-request refusals are an auth decision, not
    // an infrastructure failure).
    if (dispatched) {
        breaker.consecutiveFailures = 0;
        if (breaker.open) {
            breaker.open = false;
            ++breakerCloses_;
            machine.trace().publishLight(trace::EventKind::ServeBreakerClose,
                                         trace::kNoCore, 0, tenant.id, 0);
        }
    } else {
        ++breaker.consecutiveFailures;
        if (!breaker.open &&
            breaker.consecutiveFailures >= config_.breakerThreshold) {
            breaker.open = true;
            breaker.probeAt =
                machine.clock().cycles() + config_.breakerCooldownCycles;
            ++breakerOpens_;
            machine.trace().publishLight(trace::EventKind::ServeBreakerOpen,
                                         trace::kNoCore, 0, tenant.id,
                                         breaker.consecutiveFailures);
        } else if (breaker.open) {
            // Failed half-open probe: stay open, re-arm the cooldown.
            breaker.probeAt =
                machine.clock().cycles() + config_.breakerCooldownCycles;
        }
    }
}

std::size_t
WorkerPool::runParallel(std::size_t threads)
{
    if (threads == 0) threads = config_.threads;
    if (threads <= 1) {
        // Serial fallback: the historical step() loop, same round-robin
        // core pick, same trace stream, byte for byte.
        std::size_t steps = 0;
        while (step()) ++steps;
        return steps;
    }
    threads = std::min<std::size_t>(threads, config_.cores);

    // Static ownership: worker t serves every tenant whose gateway index
    // hashes to t on simulated core t. Disjoint gateways mean disjoint
    // staging heaps and TCSes per thread; per-tenant FIFO falls out of
    // one tenant having exactly one server thread.
    std::vector<std::vector<TenantHandle*>> owned(threads);
    for (const auto& [id, tenant] : registry_->tenants()) {
        owned[tenant->gatewayIndex % threads].push_back(tenant.get());
    }

    os::Kernel& kernel = registry_->urts().kernel();
    const os::Pid pid = registry_->urts().pid();
    std::atomic<std::size_t> total{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        workers.emplace_back([this, &owned, &kernel, &total, pid, t] {
            const hw::CoreId core = hw::CoreId(t);
            kernel.schedule(core, pid);
            std::size_t steps = 0;
            bool progress = true;
            while (progress) {
                progress = false;
                for (TenantHandle* tenant : owned[t]) {
                    if (admission_->depth(tenant->id) == 0) continue;
                    processTenant(tenant->id, core, true);
                    ++steps;
                    progress = true;
                }
            }
            total.fetch_add(steps, std::memory_order_relaxed);
        });
    }
    for (std::thread& w : workers) w.join();
    return total.load(std::memory_order_relaxed);
}

std::vector<Completion>
WorkerPool::drain()
{
    std::lock_guard<std::mutex> g(completionsM_);
    std::vector<Completion> out;
    out.swap(completions_);
    return out;
}

TenantService::Config
TenantService::tuned(Config config)
{
    // Attested onboarding implies the registry refuses dispatch to any
    // tenant that has not passed verification.
    if (config.attestOnboarding) config.registry.requireVerification = true;
    if (config.switchless.enabled) {
        // Parked pollers hold real TCSes: one outer slot for the gateway
        // poller plus one per tenant poller entering through the
        // gateway, with a spare each for the classic fallback path.
        config.registry.gatewayTcs =
            std::max(config.registry.gatewayTcs,
                     config.registry.tenantsPerOuter + 3);
        config.registry.innerTcs =
            std::max<std::uint32_t>(config.registry.innerTcs, 2);
        if (config.switchless.hostCores == 0) config.switchless.hostCores = 1;
        // Host workers keep the low cores; the engine takes poller cores
        // from the top of the core space.
        config.pool.cores = config.switchless.hostCores;
    }
    return config;
}

TenantService::TenantService(sdk::Urts& urts, Config config)
    : config_(tuned(std::move(config))),
      registry_(urts, config_.registry),
      admission_(urts.machine(), config_.admission),
      pressure_(urts.kernel(), registry_, config_.pressure),
      pool_(registry_, admission_, pressure_, config_.pool)
{
    registry_.setEpcReserve(
        [this](std::uint64_t pages) { return pressure_.ensureFree(pages); });
    if (config_.switchless.enabled) {
        switchless_ = std::make_unique<switchless::SwitchlessEngine>(
            urts, config_.switchless);
        pool_.setSwitchless(switchless_.get());
    }
    if (config_.attestOnboarding) {
        verifier_ = std::make_unique<attest::TenantVerifier>(
            urts.machine(), config_.attestNonceSeed);
    }
}

std::size_t
TenantService::armSwitchless()
{
    if (!switchless_) return 0;
    std::size_t armed = 0;
    for (const auto& [id, tenant] : registry_.tenants()) {
        if (!tenant->inner) continue;
        switchless::Endpoint ep;
        ep.outer = registry_.gatewayOuter(tenant->gatewayIndex);
        ep.inner = tenant->inner;
        ep.innerCall = "serve_batch";
        ep.slot = tenant->slot;
        ep.chain = registry_.dispatchChain(*tenant);
        if (switchless_->ready(id, ep)) ++armed;
    }
    return armed;
}

attest::Verdict
TenantService::attestInner(sdk::LoadedEnclave* inner, TenantId id,
                           std::size_t gatewayIndex)
{
    attest::Verdict verdict;
    if (!verifier_ || !inner) return verdict;  // untrusted by default

    const Bytes nonce = verifier_->nextNonce();
    auto evidence =
        registry_.provisionInner(inner, verifier_->measurement(), nonce);
    if (TenantHandle* tenant = registry_.find(id)) {
        // The provisioning entry ran (even if the evidence is later
        // rejected): the instance now holds a derived session key, and
        // rebuilds must re-run it.
        if (evidence) tenant->provisioned = true;
    }
    if (!evidence) return verdict;
    auto report = attest::decodeNestedReport(evidence.value());
    if (!report) return verdict;

    attest::TenantPolicy policy;
    policy.expectedMrEnclave = inner->mrenclave();
    policy.expectedMrSigner = core::defaultAuthorKey().pub.signerMeasurement();
    if (sdk::LoadedEnclave* outer = registry_.gatewayOuter(gatewayIndex)) {
        policy.expectedOuter = outer->mrenclave();
    }
    policy.expectedChainDepth =
        config_.attestDepthOverride
            ? *config_.attestDepthOverride
            : std::uint32_t(registry_.topology() == Topology::Cvm ? 2 : 1);

    verdict = verifier_->verify(id, report.value(), policy, nonce);
    if (verdict.trusted()) sessionKeys_[id] = verdict.sessionKey;
    return verdict;
}

Bytes
TenantService::sessionKeyFor(TenantId id) const
{
    auto it = sessionKeys_.find(id);
    return it == sessionKeys_.end() ? Bytes{} : it->second;
}

Status
TenantService::removeTenant(TenantId id)
{
    if (!registry_.find(id)) return Err::NotFound;
    if (switchless_) switchless_->disarm(id);
    (void)admission_.purge(id);
    sessionKeys_.erase(id);
    return registry_.retireTenant(id);
}

Result<TenantHandle*>
TenantService::addTenant(TenantId id, Workload workload)
{
    auto tenant = registry_.ensure(id, workload);
    if (!tenant || !config_.attestOnboarding) return tenant;
    if (tenant.value()->verified) return tenant;  // pre-existing tenant

    attest::Verdict verdict =
        attestInner(tenant.value()->inner, id, tenant.value()->gatewayIndex);
    if (!verdict.trusted()) {
        // Admission on faith is exactly what the trust path forbids:
        // tear the instance straight back down.
        (void)removeTenant(id);
        return Err::AttestationFailed;
    }
    tenant.value()->verified = true;
    return tenant;
}

Status
TenantService::submit(TenantId tenant, Bytes sealed)
{
    if (!registry_.find(tenant)) return Err::NotFound;
    return admission_.submit(tenant, std::move(sealed));
}

TenantService::Placement
TenantService::placement(TenantId id)
{
    Placement p;
    if (TenantHandle* tenant = registry_.find(id)) {
        p.epoch = tenant->epoch.load(std::memory_order_relaxed);
        p.incarnation = tenant->incarnation.load(std::memory_order_relaxed);
    }
    return p;
}

Status
TenantService::submitStamped(TenantId tenant, Bytes stamped)
{
    TenantHandle* handle = registry_.find(tenant);
    if (!handle) return Err::NotFound;
    std::uint64_t epoch = 0;
    Bytes sealed;
    if (!splitEpoch(stamped, &epoch, &sealed)) return Err::BadCallBuffer;
#ifndef NESGX_BUG_EPOCH_STALE
    // The fence: a stamp resolved before the tenant's last rebuild or
    // relocation is refused typed, never served — stale clients would
    // otherwise burn sequence numbers against a placement they cannot
    // verify responses from.
    if (epoch != handle->epoch.load(std::memory_order_relaxed)) {
        ++handle->wrongEpochs;
        registry_.urts().machine().trace().publishLight(
            trace::EventKind::ServeWrongEpoch, trace::kNoCore, 0, tenant,
            epoch);
        return Err::WrongEpoch;
    }
#endif
    return admission_.submit(tenant, std::move(sealed));
}

std::size_t
TenantService::pump(std::size_t maxBatches)
{
    std::size_t steps = 0;
    while (steps < maxBatches && pool_.step()) ++steps;
    return steps;
}

}  // namespace nesgx::serve
