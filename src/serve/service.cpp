#include "serve/service.h"

#include <set>

namespace nesgx::serve {

Status
EpcPressureManager::ensureFree(std::uint64_t pages)
{
    // Tenants whose eviction freed nothing this round (fully pinned):
    // excluded so the loop cannot spin on them.
    std::set<hw::Paddr> barren;
    while (kernel_->freeEpcPages() < pages) {
        auto victim = kernel_->pickEvictVictim([&](hw::Paddr secs) {
            if (barren.count(secs)) return false;
            TenantHandle* tenant = registry_->tenantBySecs(secs);
            return tenant != nullptr && !tenant->busy;
        });
        if (!victim) return Err::OsError;
        TenantHandle* tenant = registry_->tenantBySecs(victim.value());
        std::uint64_t written = registry_->evictTenant(*tenant);
        if (written == 0) {
            barren.insert(victim.value());
            continue;
        }
        ++tenantsEvicted_;
        pagesWritten_ += written;
    }
    return Status::ok();
}

WorkerPool::WorkerPool(TenantRegistry& registry,
                       AdmissionController& admission,
                       EpcPressureManager& pressure, Config config)
    : registry_(&registry), admission_(&admission), pressure_(&pressure),
      config_(config)
{
    if (config_.cores == 0) {
        config_.cores = registry.urts().machine().coreCount();
    }
}

bool
WorkerPool::step()
{
    auto tenantId = admission_->nextTenant();
    if (!tenantId) return false;

    std::vector<Request> batch =
        admission_->takeBatch(*tenantId, config_.batchSize);
    if (batch.empty()) return true;  // everything at the head was shed

    TenantHandle* tenant = registry_->find(*tenantId);
    if (!tenant) return true;  // submit() guarantees existence

    sgx::Machine& machine = registry_->urts().machine();

    // Transparent cold start: page the inner back in before entering.
    (void)registry_->ensureResident(*tenant);

    const hw::CoreId core = nextCore_;
    nextCore_ = (nextCore_ + 1) % config_.cores;

    std::vector<ByteView> views;
    views.reserve(batch.size());
    for (const Request& req : batch) views.push_back(req.sealed);
    Bytes blob = packBatch(tenant->slot, views);

    trace::TraceEvent begin;
    begin.kind = trace::EventKind::ServeBatchBegin;
    begin.core = core;
    begin.arg0 = tenant->id;
    begin.arg1 = batch.size();
    machine.trace().publishIfActive(begin);

    tenant->busy = true;
    auto respBlob = registry_->dispatch(*tenant, blob, core);
    tenant->busy = false;

    machine.trace().publishLight(trace::EventKind::ServeBatchEnd, core, 0,
                                 tenant->id, batch.size());
    ++batches_;

    std::vector<Bytes> responses;
    if (respBlob) {
        auto parsed = parseResponses(respBlob.value());
        if (parsed && parsed.value().size() == batch.size()) {
            responses = std::move(parsed.value());
        }
    }
    if (responses.empty() && !batch.empty()) {
        ++dispatchFailures_;
        responses.assign(batch.size(), Bytes{});
    }

    const std::uint64_t now = machine.clock().cycles();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        Completion done;
        done.id = batch[i].id;
        done.tenant = batch[i].tenant;
        done.sealedResponse = std::move(responses[i]);
        done.latencyCycles = now - batch[i].enqueuedAt;
        done.ok = !done.sealedResponse.empty();
        if (done.ok) ++served_;
        completions_.push_back(std::move(done));
    }

    // Restore the EPC watermark before the next tenant needs pages.
    pressure_->relieve();
    return true;
}

std::vector<Completion>
WorkerPool::drain()
{
    std::vector<Completion> out;
    out.swap(completions_);
    return out;
}

TenantService::TenantService(sdk::Urts& urts, Config config)
    : registry_(urts, config.registry),
      admission_(urts.machine(), config.admission),
      pressure_(urts.kernel(), registry_, config.pressure),
      pool_(registry_, admission_, pressure_, config.pool)
{
    registry_.setEpcReserve(
        [this](std::uint64_t pages) { return pressure_.ensureFree(pages); });
}

Result<TenantHandle*>
TenantService::addTenant(TenantId id, Workload workload)
{
    return registry_.ensure(id, workload);
}

Status
TenantService::submit(TenantId tenant, Bytes sealed)
{
    if (!registry_.find(tenant)) return Err::NotFound;
    return admission_.submit(tenant, std::move(sealed));
}

std::size_t
TenantService::pump(std::size_t maxBatches)
{
    std::size_t steps = 0;
    while (steps < maxBatches && pool_.step()) ++steps;
    return steps;
}

}  // namespace nesgx::serve
