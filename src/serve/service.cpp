#include "serve/service.h"

#include <set>

#include "support/logging.h"

namespace nesgx::serve {

namespace {

/** Errors that mean the tenant's inner enclave state can no longer be
 *  trusted or reached: a retry against the same instance is pointless,
 *  only destroy-and-rebuild recovers. */
bool
poisonedStatus(Status st)
{
    switch (st.code()) {
      case Err::PagingIntegrity:
      case Err::InvalidEpcPage:
      case Err::PageFault:
        return true;
      default:
        return false;
    }
}

}  // namespace

Status
EpcPressureManager::ensureFree(std::uint64_t pages)
{
    // Tenants whose eviction freed nothing this round (fully pinned):
    // excluded so the loop cannot spin on them.
    std::set<hw::Paddr> barren;
    while (kernel_->freeEpcPages() < pages) {
        auto victim = kernel_->pickEvictVictim([&](hw::Paddr secs) {
            if (barren.count(secs)) return false;
            TenantHandle* tenant = registry_->tenantBySecs(secs);
            return tenant != nullptr && !tenant->busy;
        });
        if (!victim) return Err::OsError;
        TenantHandle* tenant = registry_->tenantBySecs(victim.value());
        std::uint64_t written = registry_->evictTenant(*tenant);
        if (written == 0) {
            barren.insert(victim.value());
            continue;
        }
        ++tenantsEvicted_;
        pagesWritten_ += written;
    }
    return Status::ok();
}

void
EpcPressureManager::relieve()
{
    Status st = ensureFree(config_.lowWatermarkPages);
    if (st) return;
    ++watermarkMisses_;
    const std::uint64_t free = kernel_->freeEpcPages();
    NESGX_WARN << "epc pressure: watermark miss ("
               << config_.lowWatermarkPages << " wanted, " << free
               << " free, " << st.name() << ")";
    registry_->urts().machine().trace().publishLight(
        trace::EventKind::ServeWatermarkMiss, trace::kNoCore, 0,
        config_.lowWatermarkPages, free);
}

WorkerPool::WorkerPool(TenantRegistry& registry,
                       AdmissionController& admission,
                       EpcPressureManager& pressure, Config config)
    : registry_(&registry), admission_(&admission), pressure_(&pressure),
      config_(config)
{
    if (config_.cores == 0) {
        config_.cores = registry.urts().machine().coreCount();
    }
}

bool
WorkerPool::breakerOpen(TenantId tenant) const
{
    auto it = breakers_.find(tenant);
    return it != breakers_.end() && it->second.open;
}

Status
WorkerPool::rebuildTenantNow(TenantHandle& tenant)
{
    sgx::Machine& machine = registry_->urts().machine();
    // Everything the tenant still has queued was sealed against the
    // poisoned instance; fail it typed so the client reseals against
    // the rebuilt server instead of replaying stale sequence numbers.
    for (Request& r : admission_->purge(tenant.id)) {
        Completion done;
        done.id = r.id;
        done.tenant = r.tenant;
        done.latencyCycles = machine.clock().cycles() - r.enqueuedAt;
        done.status = Err::Unavailable;
        done.tenantRebuilt = true;
        completions_.push_back(std::move(done));
    }
    const std::uint64_t begin = machine.clock().cycles();
    Status st = registry_->rebuildTenant(tenant);
    rebuildLatency_.add(machine.clock().cycles() - begin);
    ++rebuilds_;
    return st;
}

bool
WorkerPool::step()
{
    auto tenantId = admission_->nextTenant();
    if (!tenantId) return false;

    std::vector<Request> batch =
        admission_->takeBatch(*tenantId, config_.batchSize);
    if (batch.empty()) return true;  // everything at the head was shed

    TenantHandle* tenant = registry_->find(*tenantId);
    if (!tenant) return true;  // submit() guarantees existence

    sgx::Machine& machine = registry_->urts().machine();

    auto failBatchTyped = [&](Status st, bool rebuiltFlag) {
        const std::uint64_t now = machine.clock().cycles();
        for (Request& r : batch) {
            Completion done;
            done.id = r.id;
            done.tenant = r.tenant;
            done.latencyCycles = now - r.enqueuedAt;
            done.status = st;
            done.tenantRebuilt = rebuiltFlag;
            completions_.push_back(std::move(done));
        }
    };

    // Circuit breaker: while open, refuse the batch outright unless the
    // cooldown has elapsed — then exactly this batch goes through as the
    // half-open probe.
    Breaker& breaker = breakers_[*tenantId];
    if (breaker.open) {
        bool probeDue = false;
#ifndef NESGX_BUG_BREAKER_STUCK
        probeDue = machine.clock().cycles() >= breaker.probeAt;
#endif
        if (!probeDue) {
            failBatchTyped(Err::Unavailable, false);
            pressure_->relieve();
            return true;
        }
    }

    Status finalStatus = Err::Unavailable;
    std::vector<Bytes> responses;
    bool dispatched = false;
    bool rebuilt = false;

    for (std::uint32_t attempt = 0; attempt <= config_.maxRetries;
         ++attempt) {
        if (attempt > 0) {
            ++retries_;
            machine.trace().publishLight(trace::EventKind::ServeRetry,
                                         trace::kNoCore, 0, tenant->id,
                                         attempt);
        }

        // A previous rebuild died half-way (e.g. the EPC allocator
        // refused mid-build): the tenant is inner-less until a build
        // succeeds. Keep trying under the same retry budget.
        if (!tenant->inner) {
            rebuilt = true;
            Status st = rebuildTenantNow(*tenant);
            if (!st) {
                finalStatus = st;
                continue;
            }
        }

        // Transparent cold start: page the inner back in before
        // entering. Pinned (`busy`) so the pressure manager cannot pick
        // this tenant as an eviction victim mid-reload.
        tenant->busy = true;
        auto resident = registry_->ensureResident(*tenant);
        tenant->busy = false;
        if (!resident) {
            finalStatus = resident.status();
            if (poisonedStatus(finalStatus)) {
                rebuilt = true;
                (void)rebuildTenantNow(*tenant);
                break;  // seals target the dead instance: no redispatch
            }
            continue;
        }

        const hw::CoreId core = nextCore_;
        nextCore_ = (nextCore_ + 1) % config_.cores;

        std::vector<ByteView> views;
        views.reserve(batch.size());
        for (const Request& req : batch) views.push_back(req.sealed);
        Bytes blob = packBatch(tenant->slot, views);

        trace::TraceEvent begin;
        begin.kind = trace::EventKind::ServeBatchBegin;
        begin.core = core;
        begin.arg0 = tenant->id;
        begin.arg1 = batch.size();
        machine.trace().publishIfActive(begin);

        tenant->busy = true;
        auto respBlob = registry_->dispatch(*tenant, blob, core);
        tenant->busy = false;

        machine.trace().publishLight(trace::EventKind::ServeBatchEnd, core,
                                     0, tenant->id, batch.size());
        ++batches_;

        if (!respBlob) {
            finalStatus = respBlob.status();
            if (poisonedStatus(finalStatus)) {
                rebuilt = true;
                (void)rebuildTenantNow(*tenant);
                break;
            }
            continue;
        }
        auto parsed = parseResponses(respBlob.value());
        if (!parsed) {
            finalStatus = parsed.status();
            continue;
        }
        if (parsed.value().size() != batch.size()) {
            finalStatus = Err::BadCallBuffer;
            continue;
        }
        responses = std::move(parsed.value());
        dispatched = true;
        break;
    }

    const std::uint64_t now = machine.clock().cycles();
    if (dispatched) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
            Completion done;
            done.id = batch[i].id;
            done.tenant = batch[i].tenant;
            done.sealedResponse = std::move(responses[i]);
            done.latencyCycles = now - batch[i].enqueuedAt;
            done.ok = !done.sealedResponse.empty();
            // Deliberately NOT rebuilt-flagged: a batch that round-trips
            // after a lazy rebuild was sealed against the fresh instance
            // (the client resealed when the rebuild was first reported),
            // so telling the client to reset again would wipe the very
            // expectations these responses verify against.
            if (done.ok) {
                ++served_;
            } else {
                // The batch round-tripped but the server refused this
                // request (bad seal, or a sequence already consumed by a
                // partially-processed earlier attempt).
                done.status = Err::SealRejected;
            }
            completions_.push_back(std::move(done));
        }
    } else {
        ++dispatchFailures_;
        failBatchTyped(finalStatus, rebuilt);
    }

    // Breaker bookkeeping observes the batch outcome: any round trip
    // counts as healthy (per-request refusals are an auth decision, not
    // an infrastructure failure).
    if (dispatched) {
        breaker.consecutiveFailures = 0;
        if (breaker.open) {
            breaker.open = false;
            ++breakerCloses_;
            machine.trace().publishLight(trace::EventKind::ServeBreakerClose,
                                         trace::kNoCore, 0, tenant->id, 0);
        }
    } else {
        ++breaker.consecutiveFailures;
        if (!breaker.open &&
            breaker.consecutiveFailures >= config_.breakerThreshold) {
            breaker.open = true;
            breaker.probeAt =
                machine.clock().cycles() + config_.breakerCooldownCycles;
            ++breakerOpens_;
            machine.trace().publishLight(trace::EventKind::ServeBreakerOpen,
                                         trace::kNoCore, 0, tenant->id,
                                         breaker.consecutiveFailures);
        } else if (breaker.open) {
            // Failed half-open probe: stay open, re-arm the cooldown.
            breaker.probeAt =
                machine.clock().cycles() + config_.breakerCooldownCycles;
        }
    }

    // Restore the EPC watermark before the next tenant needs pages.
    pressure_->relieve();
    return true;
}

std::vector<Completion>
WorkerPool::drain()
{
    std::vector<Completion> out;
    out.swap(completions_);
    return out;
}

TenantService::TenantService(sdk::Urts& urts, Config config)
    : registry_(urts, config.registry),
      admission_(urts.machine(), config.admission),
      pressure_(urts.kernel(), registry_, config.pressure),
      pool_(registry_, admission_, pressure_, config.pool)
{
    registry_.setEpcReserve(
        [this](std::uint64_t pages) { return pressure_.ensureFree(pages); });
}

Result<TenantHandle*>
TenantService::addTenant(TenantId id, Workload workload)
{
    return registry_.ensure(id, workload);
}

Status
TenantService::submit(TenantId tenant, Bytes sealed)
{
    if (!registry_.find(tenant)) return Err::NotFound;
    return admission_.submit(tenant, std::move(sealed));
}

std::size_t
TenantService::pump(std::size_t maxBatches)
{
    std::size_t steps = 0;
    while (steps < maxBatches && pool_.step()) ++steps;
    return steps;
}

}  // namespace nesgx::serve
