#include "serve/protocol.h"

#include "crypto/sha256.h"

namespace nesgx::serve {

const char*
workloadName(Workload w)
{
    switch (w) {
      case Workload::Echo: return "echo";
      case Workload::Sql: return "sql";
      case Workload::Svm: return "svm";
    }
    return "?";
}

Workload
workloadFromName(const std::string& name)
{
    if (name == "sql") return Workload::Sql;
    if (name == "svm") return Workload::Svm;
    return Workload::Echo;
}

Bytes
tenantKey(TenantId tenant)
{
    Bytes seed = bytesOf("nesgx-serve-tenant-key");
    seed.resize(seed.size() + 4);
    storeLe32(seed.data() + seed.size() - 4, tenant);
    auto digest = crypto::Sha256::hash(seed);
    return Bytes(digest.begin(), digest.begin() + 16);
}

namespace {

Bytes
messageIv(std::uint8_t dir, std::uint64_t seq)
{
    Bytes iv(crypto::kGcmIvSize, 0);
    storeLe64(iv.data(), seq);
    iv[8] = dir;
    return iv;
}

Bytes
messageAad(TenantId tenant, std::uint8_t dir, std::uint64_t seq)
{
    Bytes aad(13);
    storeLe32(aad.data(), tenant);
    aad[4] = dir;
    storeLe64(aad.data() + 5, seq);
    return aad;
}

}  // namespace

Bytes
sealMessage(const crypto::AesGcm& gcm, TenantId tenant, std::uint8_t dir,
            std::uint64_t seq, ByteView plain)
{
    Bytes out(8);
    storeLe64(out.data(), seq);
    Bytes sealed = gcm.seal(messageIv(dir, seq), messageAad(tenant, dir, seq),
                            plain);
    out.insert(out.end(), sealed.begin(), sealed.end());
    return out;
}

Bytes
stampEpoch(std::uint64_t epoch, ByteView sealed)
{
    Bytes out(8);
    storeLe64(out.data(), epoch);
    out.insert(out.end(), sealed.begin(), sealed.end());
    return out;
}

bool
splitEpoch(ByteView stamped, std::uint64_t* epoch, Bytes* sealed)
{
    if (stamped.size() < 8) return false;
    *epoch = loadLe64(stamped.data());
    sealed->assign(stamped.begin() + 8, stamped.end());
    return true;
}

Result<OpenedMessage>
openMessage(const crypto::AesGcm& gcm, TenantId tenant, std::uint8_t dir,
            ByteView sealed)
{
    if (sealed.size() < 8 + crypto::kGcmTagSize) return Err::BadCallBuffer;
    OpenedMessage out;
    out.seq = loadLe64(sealed.data());
    auto plain = gcm.open(messageIv(dir, out.seq),
                          messageAad(tenant, dir, out.seq),
                          sealed.subspan(8));
    if (!plain) return plain.status();
    out.plain = std::move(plain.value());
    return out;
}

std::int64_t
svmScore(TenantId tenant, ByteView features)
{
    // One-vs-rest linear decision value with per-tenant integer weights:
    // exact to recompute on the client, no float wire format needed.
    std::int64_t score = std::int64_t(tenant % 7) - 3;  // bias
    for (std::size_t i = 0; i < features.size(); ++i) {
        std::int64_t w =
            std::int64_t((std::uint64_t(tenant) * 31 + i * 17) % 101) - 50;
        score += w * std::int64_t(features[i]);
    }
    return score;
}

std::string
sqlResultText(bool ok, const std::string& error, std::uint64_t rowsAffected,
              std::size_t rows)
{
    if (!ok) return "err:" + error;
    return "ok:" + std::to_string(rowsAffected) + ":" + std::to_string(rows);
}

Bytes
packSnapshot(const TenantSnapshot& snap)
{
    Bytes out;
    out.resize(4);
    storeLe32(out.data(), std::uint32_t(snap.sessionKey.size()));
    append(out, snap.sessionKey);
    std::size_t at = out.size();
    out.resize(at + 8 + 1 + 4);
    storeLe64(out.data() + at, snap.lastSeq);
    out[at + 8] = snap.seenAny ? 1 : 0;
    storeLe32(out.data() + at + 9, std::uint32_t(snap.sqlJournal.size()));
    for (const auto& stmt : snap.sqlJournal) {
        at = out.size();
        out.resize(at + 4);
        storeLe32(out.data() + at, std::uint32_t(stmt.size()));
        append(out, ByteView(
            reinterpret_cast<const std::uint8_t*>(stmt.data()), stmt.size()));
    }
    return out;
}

Result<TenantSnapshot>
parseSnapshot(ByteView blob)
{
    TenantSnapshot snap;
    std::size_t off = 0;
    if (blob.size() < 4) return Err::BadCallBuffer;
    const std::uint32_t keyLen = loadLe32(blob.data());
    off = 4;
    if (blob.size() - off < keyLen) return Err::BadCallBuffer;
    snap.sessionKey.assign(blob.begin() + off, blob.begin() + off + keyLen);
    off += keyLen;
    if (blob.size() - off < 8 + 1 + 4) return Err::BadCallBuffer;
    snap.lastSeq = loadLe64(blob.data() + off);
    snap.seenAny = blob[off + 8] != 0;
    const std::uint32_t count = loadLe32(blob.data() + off + 9);
    off += 13;
    snap.sqlJournal.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        if (blob.size() - off < 4) return Err::BadCallBuffer;
        const std::uint32_t len = loadLe32(blob.data() + off);
        off += 4;
        if (blob.size() - off < len) return Err::BadCallBuffer;
        snap.sqlJournal.emplace_back(
            reinterpret_cast<const char*>(blob.data() + off), len);
        off += len;
    }
    if (off != blob.size()) return Err::BadCallBuffer;
    return snap;
}

Bytes
packBatch(std::uint32_t slot, const std::vector<ByteView>& msgs)
{
    std::size_t total = 8;
    for (ByteView m : msgs) total += 4 + m.size();
    Bytes out(total);
    storeLe32(out.data(), slot);
    storeLe32(out.data() + 4, std::uint32_t(msgs.size()));
    std::size_t at = 8;
    for (ByteView m : msgs) {
        storeLe32(out.data() + at, std::uint32_t(m.size()));
        at += 4;
        std::copy(m.begin(), m.end(), out.begin() + at);
        at += m.size();
    }
    return out;
}

Bytes
packResponses(const std::vector<Bytes>& msgs)
{
    std::size_t total = 4;
    for (const Bytes& m : msgs) total += 4 + m.size();
    Bytes out(total);
    storeLe32(out.data(), std::uint32_t(msgs.size()));
    std::size_t at = 4;
    for (const Bytes& m : msgs) {
        storeLe32(out.data() + at, std::uint32_t(m.size()));
        at += 4;
        std::copy(m.begin(), m.end(), out.begin() + at);
        at += m.size();
    }
    return out;
}

Result<ParsedBatch>
parseBatch(ByteView blob)
{
    if (blob.size() < 8) return Err::BadCallBuffer;
    ParsedBatch out;
    out.slot = loadLe32(blob.data());
    std::uint32_t count = loadLe32(blob.data() + 4);
    std::size_t at = 8;
    out.msgs.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        if (at + 4 > blob.size()) return Err::BadCallBuffer;
        std::uint32_t len = loadLe32(blob.data() + at);
        at += 4;
        if (at + len > blob.size()) return Err::BadCallBuffer;
        out.msgs.push_back(blob.subspan(at, len));
        at += len;
    }
    return out;
}

Result<std::vector<Bytes>>
parseResponses(ByteView blob)
{
    if (blob.size() < 4) return Err::BadCallBuffer;
    std::uint32_t count = loadLe32(blob.data());
    std::vector<Bytes> out;
    out.reserve(count);
    std::size_t at = 4;
    for (std::uint32_t i = 0; i < count; ++i) {
        if (at + 4 > blob.size()) return Err::BadCallBuffer;
        std::uint32_t len = loadLe32(blob.data() + at);
        at += 4;
        if (at + len > blob.size()) return Err::BadCallBuffer;
        out.emplace_back(blob.begin() + at, blob.begin() + at + len);
        at += len;
    }
    return out;
}

}  // namespace nesgx::serve
