/**
 * Wire protocol between a tenant's client and its inner enclave.
 *
 * Every request/response is sealed with a per-tenant AES-GCM key that
 * only the client and the tenant's *inner* enclave hold — the shared
 * outer gateway enclave moves ciphertext by reference and never sees
 * plaintext (the paper's §VI service model: the library tier is shared,
 * the secrets are not).
 *
 * Sealed message layout:   [u64 seq LE][GCM ciphertext]
 *   iv  (12B) = seq LE64 || direction || 0 0 0
 *   aad (13B) = tenant u32 LE || direction || seq LE64
 * The sequence number rides in the clear so the server can keep a
 * strictly-monotonic replay check even when the admission controller
 * sheds intermediate requests (gaps are fine, regressions are not).
 *
 * Batch blobs (host -> gateway ecall, gateway -> host result):
 *   request:  [u32 slot LE][u32 count LE] then count x [u32 len][bytes]
 *   response: [u32 count LE] then count x [u32 len][bytes]
 * A zero-length response slot marks a request the server refused
 * (bad seal / replay); clients count those as integrity failures.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/gcm.h"
#include "support/bytes.h"
#include "support/status.h"

namespace nesgx::serve {

using TenantId = std::uint32_t;

enum class Workload : std::uint8_t { Echo, Sql, Svm };

const char* workloadName(Workload w);

/** Parses "echo" / "sql" / "svm"; defaults to Echo on anything else. */
Workload workloadFromName(const std::string& name);

/** Deterministic 16-byte per-tenant session key (client + inner only). */
Bytes tenantKey(TenantId tenant);

constexpr std::uint8_t kDirRequest = 0;
constexpr std::uint8_t kDirResponse = 1;
/** Direction tag for sealed migration snapshots (inner -> inner). */
constexpr std::uint8_t kDirMigrate = 2;

/** Seals one message under the tenant session key. */
Bytes sealMessage(const crypto::AesGcm& gcm, TenantId tenant,
                  std::uint8_t dir, std::uint64_t seq, ByteView plain);

struct OpenedMessage {
    std::uint64_t seq = 0;
    Bytes plain;
};

/** Opens a sealed message; fails on truncation or MAC mismatch. */
Result<OpenedMessage> openMessage(const crypto::AesGcm& gcm, TenantId tenant,
                                  std::uint8_t dir, ByteView sealed);

/** Linear per-tenant scoring model standing in for SVM inference: the
 *  16 payload bytes are the feature vector, weights derive from the
 *  tenant id, so the client can recompute the exact score. */
std::int64_t svmScore(TenantId tenant, ByteView features);

/** Deterministic response text for one minidb statement result. */
std::string sqlResultText(bool ok, const std::string& error,
                          std::uint64_t rowsAffected, std::size_t rows);

// --- placement epoch stamp (host-side envelope) -------------------------

/**
 * Epoch-fenced submits wrap the sealed request in a host-side envelope:
 * [u64 epoch LE] + sealed bytes. The stamp is stripped by the service
 * *before* the sealed request is enqueued, so enclave-visible traffic —
 * and therefore the machine trace — is byte-identical whether or not a
 * client fences. Stale stamps are refused with Err::WrongEpoch.
 */
Bytes stampEpoch(std::uint64_t epoch, ByteView sealed);

/** Splits a stamped envelope; false on truncation. */
bool splitEpoch(ByteView stamped, std::uint64_t* epoch, Bytes* sealed);

// --- migration snapshot codec -------------------------------------------

/** Everything a tenant inner must carry across a live migration to
 *  resume its sealed session with sequence continuity: the session key,
 *  the replay high-water mark, and (for Sql tenants) the statement
 *  journal that deterministically rebuilds the database. Packed inside
 *  the enclave and sealed under a migration transport key — the
 *  untrusted relocation machinery only ever sees ciphertext. */
struct TenantSnapshot {
    Bytes sessionKey;  ///< empty = tenant still on the out-of-band key
    std::uint64_t lastSeq = 0;
    bool seenAny = false;
    std::vector<std::string> sqlJournal;
};

Bytes packSnapshot(const TenantSnapshot& snap);
Result<TenantSnapshot> parseSnapshot(ByteView blob);

// --- batch blob codec ---------------------------------------------------

Bytes packBatch(std::uint32_t slot, const std::vector<ByteView>& msgs);
Bytes packResponses(const std::vector<Bytes>& msgs);

struct ParsedBatch {
    std::uint32_t slot = 0;
    std::vector<ByteView> msgs;  ///< views into the input blob
};

/** Parses a request blob (views alias `blob`; keep it alive). */
Result<ParsedBatch> parseBatch(ByteView blob);

/** Parses a response blob into owned messages. */
Result<std::vector<Bytes>> parseResponses(ByteView blob);

}  // namespace nesgx::serve
