/**
 * AdmissionController: bounded per-tenant request queues with
 * backpressure and deadline-based shedding.
 *
 * Submission into a full queue is refused with Err::Backpressure (the
 * client's signal to back off); queued requests that outlive their
 * deadline are shed at dequeue time — the service never spends an
 * enclave transition on a request whose client has given up. Tenants
 * are drained round-robin so one hot tenant cannot starve the rest.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>

#include "serve/protocol.h"
#include "sgx/machine.h"
#include "support/counter.h"

namespace nesgx::serve {

struct Request {
    std::uint64_t id = 0;
    TenantId tenant = 0;
    std::uint64_t enqueuedAt = 0;  ///< sim-clock cycles at submit
    std::uint64_t deadline = 0;    ///< absolute cycles; 0 = none
    Bytes sealed;
};

class AdmissionController {
  public:
    struct Config {
        std::size_t maxQueueDepth = 64;
        /** Relative deadline applied at submit; 0 disables shedding. */
        std::uint64_t deadlineCycles = 0;
    };

    AdmissionController(sgx::Machine& machine, Config config)
        : machine_(&machine), config_(config)
    {
    }

    /** Enqueues one sealed request; Err::Backpressure when full. */
    Status submit(TenantId tenant, Bytes sealed);

    /** Pops up to `max` live requests for the tenant, shedding expired
     *  ones from the head first. Each shed request gets its own
     *  ServeShed event, and when `shedOut` is given the shed requests
     *  are handed back so the caller can complete them typed
     *  (Err::Deadline) instead of letting them vanish. */
    std::vector<Request> takeBatch(TenantId tenant, std::size_t max,
                                   std::vector<Request>* shedOut = nullptr);

    /** Round-robin pick of the next tenant with queued work. */
    std::optional<TenantId> nextTenant();

    /** Removes and returns the tenant's entire queue (tenant rebuild:
     *  every queued seal targets the dead server instance). */
    std::vector<Request> purge(TenantId tenant);

    std::size_t depth(TenantId tenant) const;
    std::size_t totalQueued() const
    {
        return totalQueued_.load(std::memory_order_relaxed);
    }

    std::uint64_t submitted() const { return submitted_; }
    std::uint64_t rejected() const { return rejected_; }
    std::uint64_t shed() const { return shed_; }

  private:
    sgx::Machine* machine_;
    Config config_;
    /** One coarse lock over the queue map and cursor: queue ops are
     *  microseconds next to a batched enclave dispatch, so worker
     *  threads contend here far less than they work. Leaf-level — held
     *  across nothing but the map and the trace publish. */
    mutable std::mutex m_;
    std::map<TenantId, std::deque<Request>> queues_;
    TenantId lastTenant_ = 0;
    bool haveLast_ = false;
    std::atomic<std::size_t> totalQueued_{0};
    std::uint64_t nextId_ = 1;
    Counter submitted_;
    Counter rejected_;
    Counter shed_;
};

}  // namespace nesgx::serve
