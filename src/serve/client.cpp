#include "serve/client.h"

namespace nesgx::serve {

TenantClient::TenantClient(TenantId tenant, Workload workload,
                           ByteView sessionKey)
    : tenant_(tenant), workload_(workload),
      gcm_(sessionKey.empty() ? crypto::AesGcm(tenantKey(tenant))
                              : crypto::AesGcm(sessionKey)),
      rng_(0x5e7ea11ull * (tenant + 1)),
      backoffRng_(0xbac0ffull * (tenant + 1))
{
}

Bytes
TenantClient::makePlaintext(std::uint64_t seq, Bytes& expectedResponse)
{
    switch (workload_) {
      case Workload::Echo: {
        Bytes payload = rng_.bytes(48 + seq % 96);
        expectedResponse = payload;
        return payload;
      }
      case Workload::Sql: {
        std::string stmt;
        const std::int64_t key = std::int64_t(sqlStep_ % 100);
        if (sqlStep_ == 0) {
            stmt = "CREATE TABLE t (k, v)";
        } else {
            switch (sqlStep_ % 3) {
              case 1:
                stmt = "INSERT INTO t VALUES (" + std::to_string(key) +
                       ", 'v" + std::to_string(sqlStep_) + "')";
                break;
              case 2:
                stmt = "SELECT * FROM t WHERE k = " + std::to_string(key);
                break;
              default:
                stmt = "UPDATE t SET v = 'u" + std::to_string(sqlStep_) +
                       "' WHERE k = " + std::to_string(key);
                break;
            }
        }
        ++sqlStep_;
        // The shadow database mirrors the server's engine statement by
        // statement, so sql expectations are only valid when every
        // request is delivered in order — drive sql tenants without
        // deadline shedding (echo/svm expectations are per-request and
        // tolerate gaps).
        db::QueryResult r = shadowDb_.execute(stmt);
        expectedResponse =
            bytesOf(sqlResultText(r.ok, r.error, r.rowsAffected,
                                  r.rows.size()));
        return bytesOf(stmt);
      }
      case Workload::Svm: {
        Bytes features = rng_.bytes(16);
        expectedResponse.resize(8);
        storeLe64(expectedResponse.data(),
                  std::uint64_t(svmScore(tenant_, features)));
        return features;
      }
    }
    expectedResponse.clear();
    return Bytes{};
}

Bytes
TenantClient::nextRequest()
{
    const std::uint64_t seq = ++sendSeq_;
    Bytes expectedResponse;
    Bytes plain = makePlaintext(seq, expectedResponse);
    expected_[seq] = std::move(expectedResponse);
    return sealMessage(gcm_, tenant_, kDirRequest, seq, plain);
}

Bytes
TenantClient::nextStampedRequest()
{
    return stampEpoch(epoch_, nextRequest());
}

void
TenantClient::onPlacement(std::uint64_t epoch, std::uint64_t incarnation)
{
    if (incarnation_ != 0 && incarnation != incarnation_) onTenantRebuilt();
    epoch_ = epoch;
    incarnation_ = incarnation;
    consecutiveRedirects_ = 0;
}

std::uint64_t
TenantClient::onWrongEpoch()
{
    ++redirects_;
    // 1k cycles doubling per consecutive redirect, capped at ~1M, with
    // up to 50% seeded jitter on top.
    const std::uint64_t shift =
        consecutiveRedirects_ < 10 ? consecutiveRedirects_ : 10;
    ++consecutiveRedirects_;
    const std::uint64_t base = 1000ull << shift;
    return base + backoffRng_.next() % (base / 2 + 1);
}

bool
TenantClient::onResponse(ByteView sealedResponse)
{
    if (sealedResponse.empty()) {
        ++failures_;
        return false;
    }
    auto opened = openMessage(gcm_, tenant_, kDirResponse, sealedResponse);
    if (!opened) {
        ++failures_;
        return false;
    }
    auto it = expected_.find(opened.value().seq);
    if (it == expected_.end() || it->second != opened.value().plain) {
        ++failures_;
        return false;
    }
    expected_.erase(it);
    ++verified_;
    return true;
}

void
TenantClient::onDropped()
{
    if (!expected_.empty()) expected_.erase(expected_.begin());
}

void
TenantClient::onTenantRebuilt()
{
    expected_.clear();
    shadowDb_ = db::Database{};
    sqlStep_ = 0;
    sendSeq_ = 0;
    ++rebuildsSeen_;
}

}  // namespace nesgx::serve
