/**
 * Latency accounting for the serving layer: an exact-sample histogram
 * with nearest-rank percentiles. Samples are simulated-clock cycle
 * counts, so every percentile the benches report is deterministic.
 *
 * bench/bench_util.h re-exports this into nesgx::bench so the figure
 * binaries share one percentile implementation with the service.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace nesgx::serve {

class Histogram {
  public:
    void add(std::uint64_t value)
    {
        // Appending in (non-strictly) increasing order preserves
        // sortedness — only an out-of-order sample invalidates it.
        // Unconditionally clearing the flag here forced a full re-sort
        // per percentile call under add/query interleavings.
        const bool keepsOrder =
            samples_.empty() || (sorted_ && value >= samples_.back());
        samples_.push_back(value);
        sorted_ = keepsOrder;
    }

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    std::uint64_t min() const
    {
        sort();
        return samples_.empty() ? 0 : samples_.front();
    }

    std::uint64_t max() const
    {
        sort();
        return samples_.empty() ? 0 : samples_.back();
    }

    double mean() const
    {
        if (samples_.empty()) return 0.0;
        double sum = 0.0;
        for (std::uint64_t v : samples_) sum += double(v);
        return sum / double(samples_.size());
    }

    /** Nearest-rank percentile; `p` in [0, 100]. 0 when empty. */
    std::uint64_t percentile(double p) const
    {
        if (samples_.empty()) return 0;
        sort();
        if (p <= 0) return samples_.front();
        if (p >= 100) return samples_.back();
        // ceil(p/100 * N) with integer rank in [1, N].
        std::size_t rank =
            std::size_t((p / 100.0) * double(samples_.size()) + 0.9999999);
        if (rank < 1) rank = 1;
        if (rank > samples_.size()) rank = samples_.size();
        return samples_[rank - 1];
    }

    std::uint64_t p50() const { return percentile(50); }
    std::uint64_t p95() const { return percentile(95); }
    std::uint64_t p99() const { return percentile(99); }

    void clear()
    {
        samples_.clear();
        sorted_ = true;
    }

  private:
    void sort() const
    {
        if (sorted_) return;
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }

    mutable std::vector<std::uint64_t> samples_;
    mutable bool sorted_ = true;
};

}  // namespace nesgx::serve
