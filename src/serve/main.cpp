/**
 * nesgx_serve: multi-tenant serving demo over the emulated nested-SGX
 * machine. Spins up N tenants (one inner enclave each, pooled into
 * shared gateway outers), pushes a closed-loop request stream through
 * the admission controller and worker pool, and verifies every sealed
 * response client-side.
 *
 *   nesgx_serve --tenants 8 --requests 200 [--batch 8] [--epc-pages 0]
 *               [--deadline 0] [--queue-depth 64] [--threads 1]
 *               [--topology flat|cvm] [--chrome-trace p.json]
 *               [--faults SPEC] [--fault-seed N] [--chaos SEED]
 *               [--attest 1] [--attest-expect-depth N] [--migrate K]
 *               [--supervise 1] [--help]
 *
 * Exit codes are part of the CI contract: 0 = success, 1 = integrity /
 * attestation / self-healing failure (a refused onboarding, a sealed
 * response that failed verification, a chaos gate missed), 2 = flag
 * error (unknown topology, malformed --faults spec — the parse
 * diagnostic, including its "did you mean" suggestion, goes to stderr).
 *
 * --supervise 1 attaches the failure-domain supervisor (src/supervise):
 * a health watchdog ticks after every pump, classifies wedged tenants
 * from heartbeat counters and climbs the escalation ladder (kick ->
 * tenant rebuild -> gateway-subtree rebuild -> evacuate). Under --chaos
 * the fault plan gains the gateway-crash and poller-wedge sites — a
 * crashed gateway can ONLY heal through the supervisor's subtree rung,
 * so the chaos gates require the watchdog to have fired.
 *
 * --attest 1 (the default) onboards every tenant through the NEREPORT
 * trust path: the tenant is admitted only after its evidence chain
 * verifies, and clients seal with the EGETKEY-rooted session key from
 * the attested exchange instead of an out-of-band secret. A tenant that
 * fails attestation (e.g. a policy/topology mismatch forced with
 * --attest-expect-depth) makes the run exit nonzero. --attest 0 reverts
 * to legacy faith-based admission.
 *
 * --migrate K live-migrates one tenant (round-robin) to a different
 * gateway after every K submissions — sealed snapshot export, EWB
 * drain, staged rebuild, re-attestation, import — while the request
 * stream keeps flowing; sessions must survive with sequence continuity.
 * Under --chaos the default fault plan gains the migrate-export/import
 * sites, so some moves abort mid-storm and must roll back cleanly.
 *
 * --topology cvm nests the whole fleet one level deeper: a single
 * depth-1 "CVM" root enclave hosts every gateway as a depth-2 inner and
 * tenants serve at depth 3 (paper §VIII). A dispatch is then one EENTER
 * plus two NEENTERs down the validated ancestor chain. The default flat
 * layout is byte-identical to the historical two-level registry.
 *
 * --threads N drains the queues with N real OS worker threads, each
 * pinning one simulated core (see WorkerPool::runParallel). N=1 is the
 * historical serial pump — byte-identical traces and counters.
 *
 * --faults arms the deterministic fault injector (src/fault) with a
 * site@trigger spec, e.g. "ewb-corrupt@n=3;eenter-fail@every=40".
 *
 * --chaos SEED is the self-healing acceptance mode: a 24-tenant
 * 4x-oversubscribed run with a default multi-site fault plan armed
 * after setup, followed by a fault-free recovery phase. It exits
 * nonzero unless faults actually fired at >= 5 distinct sites, at
 * least one tenant was rebuilt, every request either verified or
 * carried a typed error (zero silent empties), and every tenant
 * serves verified responses again once the faults stop.
 *
 * Exits nonzero on any integrity failure, making it usable as a CI
 * smoke test.
 */
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include <cstring>

#include "fault/injector.h"
#include "migrate/engine.h"
#include "serve/client.h"
#include "serve/service.h"
#include "supervise/supervisor.h"
#include "trace/chrome_sink.h"

namespace {

using namespace nesgx;

/** Minimal flag parser (mirrors bench_util, which the src tree cannot
 *  include from here without inverting the layering). */
std::uint64_t
flagU64(int argc, char** argv, const char* name, std::uint64_t fallback)
{
    const std::string want = std::string("--") + name;
    for (int i = 1; i + 1 < argc; ++i) {
        if (want == argv[i]) return std::stoull(argv[i + 1]);
    }
    return fallback;
}

std::string
flagStr(int argc, char** argv, const char* name, const std::string& fallback)
{
    const std::string want = std::string("--") + name;
    for (int i = 1; i + 1 < argc; ++i) {
        if (want == argv[i]) return argv[i + 1];
    }
    return fallback;
}

/** The --chaos default plan: storage corruption (forces PagingIntegrity
 *  recoveries), periodic leaf and allocator refusals, and an interrupt
 *  storm — seven sites so the ">= 5 distinct kinds" gate has slack. */
const char* kChaosPlan =
    "ewb-corrupt@n=3; ewb-drop-slot@n=9; eldu-fail@n=15;"
    "eenter-fail@every=40; neenter-fail@every=45;"
    "epc-alloc-fail@every=150; aex-storm@every=100;"
    // The ring-stall site only has occurrences on the switchless path
    // (--switchless 1): a classic chaos run records zero and the
    // distinct-site gate still has seven live sites of slack.
    " ring-stall@every=30";

constexpr std::uint64_t kNoChaos = std::uint64_t(-1);

const char* kUsage =
    "usage: nesgx_serve [--tenants N] [--requests N] [--batch N]\n"
    "                   [--epc-pages N] [--deadline CYCLES]\n"
    "                   [--queue-depth N] [--threads N]\n"
    "                   [--topology flat|cvm] [--switchless 1]\n"
    "                   [--chrome-trace PATH] [--faults SPEC]\n"
    "                   [--fault-seed N] [--chaos SEED] [--attest 0|1]\n"
    "                   [--attest-expect-depth N] [--migrate K]\n"
    "                   [--supervise 1] [--help]\n"
    "\n"
    "  --faults arms the deterministic injector with a site@trigger\n"
    "  spec, e.g. \"ewb-corrupt@n=3;eenter-fail@every=40\"; a typo'd\n"
    "  site or trigger name is a flag error with a suggestion.\n"
    "  --supervise 1 attaches the failure-domain watchdog (wedge\n"
    "  detection, escalation ladder, evacuation).\n"
    "\n"
    "exit codes:\n"
    "  0  every sealed response verified and all gates passed\n"
    "  1  integrity/attestation/self-healing failure\n"
    "  2  flag error (unknown topology, malformed --faults spec)\n";

}  // namespace

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            std::printf("%s", kUsage);
            return 0;
        }
    }

    const std::uint64_t chaosSeed =
        flagU64(argc, argv, "chaos", kNoChaos);
    const bool chaos = chaosSeed != kNoChaos;

    const std::string topology = flagStr(argc, argv, "topology", "flat");
    if (topology != "flat" && topology != "cvm") {
        std::fprintf(stderr, "error: --topology must be flat or cvm\n");
        return 2;
    }
    const bool cvm = topology == "cvm";

    const std::uint64_t tenants =
        flagU64(argc, argv, "tenants", chaos ? 24 : 8);
    const std::uint64_t requests =
        flagU64(argc, argv, "requests", chaos ? 960 : 200);
    const std::uint64_t batch = flagU64(argc, argv, "batch", 8);
    // The cvm tree's root + per-gateway TCS pools are unevictable, so
    // its pressure runs need a slightly larger (still heavily
    // oversubscribed) EPC floor.
    const std::uint64_t epcPages =
        flagU64(argc, argv, "epc-pages", chaos ? (cvm ? 1280 : 1024) : 0);
    const std::uint64_t deadline = flagU64(argc, argv, "deadline", 0);
    const std::uint64_t queueDepth = flagU64(argc, argv, "queue-depth", 64);
    const bool switchless = flagU64(argc, argv, "switchless", 0) != 0;
    const std::uint64_t threads = flagU64(argc, argv, "threads", 1);
    const std::string tracePath = flagStr(argc, argv, "chrome-trace", "");
    const bool attest = flagU64(argc, argv, "attest", 1) != 0;
    const std::uint64_t attestExpectDepth =
        flagU64(argc, argv, "attest-expect-depth", 0);
    const std::uint64_t migrateEvery = flagU64(argc, argv, "migrate", 0);
    const bool supervise = flagU64(argc, argv, "supervise", 0) != 0;
    // Mid-storm migrations: the chaos plan gains the migration sites so
    // some moves abort at export or import and must roll back with the
    // source still serving.
    std::string chaosPlan = kChaosPlan;
    if (chaos && migrateEvery > 0) {
        chaosPlan += "; migrate-export-fail@n=2; migrate-import-fail@n=2";
    }
    // Supervised chaos adds the failure-domain sites: a crashed gateway
    // refuses every dispatch until the supervisor's subtree rung rebuilds
    // it, and a wedged poller refuses until the kick rung disarms it
    // (poller-wedge only has occurrences on the switchless path).
    if (chaos && supervise) {
        chaosPlan += "; gateway-crash@n=2; poller-wedge@n=2";
    }
    const std::string faultSpec =
        flagStr(argc, argv, "faults", chaos ? chaosPlan : "");
    const std::uint64_t faultSeed =
        flagU64(argc, argv, "fault-seed", chaos ? chaosSeed : 1);

    sgx::Machine::Config mc;
    mc.dramBytes = 256ull << 20;
    mc.prmBase = 128ull << 20;
    mc.prmBytes = 64ull << 20;
    const std::uint64_t tenantsPerOuter = 4;
    const std::uint64_t gatewayEstimate =
        (tenants + tenantsPerOuter - 1) / tenantsPerOuter;
    if (switchless) {
        // One parked poller core per tenant, one per gateway, plus the
        // host workers: polling trades cores for transitions, so the
        // simulated socket grows with the fleet. The cvm tree parks one
        // more poller inside the shared root.
        mc.coreCount =
            std::uint32_t(tenants + gatewayEstimate + (cvm ? 3 : 2));
    }
    if (epcPages > 0) {
        // Shrink the PRM so EPC pressure kicks in at small scale.
        mc.prmBytes = (epcPages + 64) * hw::kPageSize;
    }
    // One simulated core per worker thread, on top of whatever the
    // switchless sizing already asked for.
    if (threads > 1 && mc.coreCount < threads) {
        mc.coreCount = std::uint32_t(threads);
    }
    sgx::Machine machine(mc);
    os::Kernel kernel(machine);
    os::Pid pid = kernel.createProcess();
    sdk::Urts urts(kernel, pid);
    for (hw::CoreId c = 0; c < machine.coreCount(); ++c) {
        kernel.schedule(c, pid);
    }

    std::unique_ptr<trace::ChromeTraceSink> sink;
    if (!tracePath.empty()) {
        sink = std::make_unique<trace::ChromeTraceSink>(2400.0, false);
        machine.trace().subscribe(sink.get());
        // Real worker threads publish concurrently: buffer per-shard and
        // merge by global sequence. Serial runs never enter this mode,
        // keeping --threads 1 trace output byte-identical.
        if (threads > 1) machine.trace().enableParallel(threads);
    }

    std::unique_ptr<fault::FaultInjector> injector;
    if (!faultSpec.empty()) {
        std::string parseError;
        auto plan = fault::FaultPlan::parse(faultSpec, &parseError);
        if (!plan) {
            std::fprintf(stderr, "error: --faults: %s\n",
                         parseError.c_str());
            return 2;
        }
        injector = std::make_unique<fault::FaultInjector>(plan.value(),
                                                          faultSeed);
    }

    serve::TenantService::Config sc;
    sc.admission.maxQueueDepth = queueDepth;
    sc.admission.deadlineCycles = deadline;
    sc.pool.batchSize = batch;
    sc.pool.threads = threads;
    sc.switchless.enabled = switchless;
    sc.switchless.hostCores = 2;
    if (cvm) {
        sc.registry.topology = serve::Topology::Cvm;
        // The CVM root's TCS pool carries every concurrent entry into
        // the tree: worker threads, and under switchless one parked
        // poller per tenant/gateway plus the root's own.
        sc.registry.cvmTcs =
            std::uint32_t(tenants + gatewayEstimate + threads + 4);
        // Per-gateway ring pairs + staging live in the root's heap.
        sc.registry.cvmHeapPages =
            std::uint64_t(64 + 8 * gatewayEstimate);
    }
    if (chaos) {
        // One failed batch opens the breaker, so the open -> half-open
        // probe -> close cycle is guaranteed to run within the chaos
        // window; the cooldown is roughly one batch of service time.
        sc.pool.breakerThreshold = 1;
        sc.pool.breakerCooldownCycles = 150000;
    }
    sc.attestOnboarding = attest;
    if (attestExpectDepth > 0) {
        sc.attestDepthOverride = std::uint32_t(attestExpectDepth);
    }
    serve::TenantService service(urts, sc);

    // sql only when delivery is lossless (shadow-db expectations replay
    // every statement); deadline shedding and fault injection both drop
    // requests, so those runs stick to the per-request workloads.
    const std::vector<serve::Workload> mix =
        (deadline == 0 && !injector)
            ? std::vector<serve::Workload>{serve::Workload::Echo,
                                           serve::Workload::Sql,
                                           serve::Workload::Svm}
            : std::vector<serve::Workload>{serve::Workload::Echo,
                                           serve::Workload::Svm};

    std::vector<std::unique_ptr<serve::TenantClient>> clients;
    for (std::uint64_t t = 0; t < tenants; ++t) {
        auto workload = mix[t % mix.size()];
        auto handle = service.addTenant(serve::TenantId(t), workload);
        if (!handle) {
            std::fprintf(stderr,
                         "error: tenant %llu refused at onboarding: %s\n",
                         (unsigned long long)t, handle.status().name());
            return 1;
        }
        // Attested onboarding hands the client the EGETKEY-rooted
        // session key; an empty key falls back to the legacy
        // out-of-band secret.
        const Bytes sessionKey =
            service.sessionKeyFor(serve::TenantId(t));
        clients.push_back(std::make_unique<serve::TenantClient>(
            serve::TenantId(t), workload, sessionKey));
    }

    // Park the switchless pollers while the world is still fault-free,
    // then snapshot the transition counters: everything after this point
    // is the request path the transitions-per-request figure describes.
    const std::size_t armedChannels = service.armSwitchless();
    const std::uint64_t transitionsBase =
        machine.trace().counters().eenterCount +
        machine.trace().counters().neenterCount;

    // Armed only now: tenant setup must succeed unconditionally, and
    // trigger occurrence counts stay independent of the setup's leaf
    // traffic.
    if (injector) machine.setFaultInjector(injector.get());

    serve::Histogram latency;
    std::uint64_t completedOk = 0;
    std::uint64_t integrityRefused = 0;
    std::uint64_t typedErrors = 0;
    std::uint64_t silentEmpties = 0;
    std::uint64_t backpressured = 0;
    std::uint64_t typedByErr[kErrCount] = {};

    // The failure-domain watchdog (--supervise 1): ticks after every
    // pump, so wedges are detected at batch granularity and the ladder's
    // actions (kick/rebuild/evacuate-to-another-gateway) run between
    // pumps on the main thread.
    migrate::MigrationEngine migrator;
    std::unique_ptr<supervise::Supervisor> supervisor;
    if (supervise) {
        supervisor =
            std::make_unique<supervise::Supervisor>(service,
                                                    supervise::Config{});
        supervisor->attachEngine(migrator);
    }

    // The parallel pool drains its owned queues completely per call, so
    // maxBatches only applies to the serial path (where it always did).
    auto pumpAll = [&](std::size_t maxBatches) {
        const std::size_t batches = threads > 1
                                        ? service.pumpParallel(threads)
                                        : service.pump(maxBatches);
        if (supervisor) supervisor->tick();
        return batches;
    };

    auto drainInto = [&]() {
        // A tenant is rebuilt at most once per pump, so one reset per
        // (tenant, drain) keeps the client mirror exact.
        std::set<serve::TenantId> rebuiltSeen;
        for (serve::Completion& done : service.drain()) {
            latency.add(done.latencyCycles);
            if (done.tenantRebuilt &&
                rebuiltSeen.insert(done.tenant).second) {
                clients[done.tenant]->onTenantRebuilt();
            }
            if (done.ok) {
                if (clients[done.tenant]->onResponse(done.sealedResponse)) {
                    ++completedOk;
                } else {
                    ++integrityRefused;
                }
            } else if (done.status.isOk()) {
                // ok == false must always carry a typed reason.
                ++silentEmpties;
            } else {
                ++typedErrors;
                ++typedByErr[std::size_t(done.error())];
                // Rebuild-marked errors already reset the whole client;
                // for the rest, retire the oldest pending expectation
                // (requests complete in sequence order per tenant).
                if (!done.tenantRebuilt) clients[done.tenant]->onDropped();
            }
        }
    };

    // Closed loop: every tenant keeps one small window in flight.
    std::uint64_t submitted = 0;
    std::uint64_t cursor = 0;
    std::uint64_t migrateCursor = 0;
    while (submitted < requests) {
        const serve::TenantId t = serve::TenantId(cursor % tenants);
        ++cursor;
        Bytes req = clients[t]->nextRequest();
        Status st = service.submit(t, std::move(req));
        if (st.code() == Err::Backpressure) {
            ++backpressured;
            clients[t]->onDropped();
            pumpAll(4);  // let the pool catch up, then move on
            drainInto();
            continue;
        }
        if (!st) {
            std::fprintf(stderr, "error: submit: %s\n", st.name());
            return 1;
        }
        ++submitted;
        // Live migration mid-stream: the moved tenant's queued and
        // future requests must keep verifying with no reseal — failed
        // moves (chaos can hit the migrate fault sites) roll back to
        // the intact source and are just counted.
        if (migrateEvery > 0 && submitted % migrateEvery == 0) {
            const serve::TenantId victim =
                serve::TenantId(migrateCursor++ % tenants);
            (void)migrator.migrateToGateway(service, victim);
        }
        if (submitted % (batch * tenants) == 0) {
            pumpAll(std::size_t(-1));
            drainInto();
        }
    }
    pumpAll(std::size_t(-1));
    drainInto();

    // Recovery phase: stop injecting and require every tenant to serve
    // a verified response again — open breakers must probe shut and
    // inner-less tenants must finish rebuilding. The clock charge lets
    // half-open probe deadlines pass between rounds.
    std::uint64_t recovered = 0;
    if (injector) {
        injector->disarm();
        std::vector<bool> healed(tenants, false);
        const std::uint64_t before[2] = {completedOk, typedErrors};
        (void)before;
        for (int round = 0; round < 64 && recovered < tenants; ++round) {
            for (std::uint64_t t = 0; t < tenants; ++t) {
                if (healed[t]) continue;
                const std::uint64_t wasVerified = clients[t]->verified();
                Status st = service.submit(
                    serve::TenantId(t), clients[t]->nextRequest());
                if (!st) {
                    clients[t]->onDropped();
                }
                pumpAll(std::size_t(-1));
                drainInto();
                if (clients[t]->verified() > wasVerified) {
                    healed[t] = true;
                    ++recovered;
                }
            }
            machine.charge(sc.pool.breakerCooldownCycles + 1);
        }
        // A tenant that never healed is a bug somewhere in the recovery
        // machinery; dump its failure-domain state next to the FAIL.
        if (recovered < tenants) {
            std::size_t resident = 0;
            for (const auto& [secs, rec] :
                 urts.kernel().enclaveTable()) {
                resident += 1 + rec.pages.size();
            }
            std::fprintf(stderr,
                         "epc: %zu free, %zu enclaves (%zu resident "
                         "pages), %zu gateways\n",
                         urts.kernel().freeEpcPages(),
                         urts.kernel().enclaveTable().size(),
                         resident, service.registry().gatewayCount());
        }
        for (std::uint64_t t = 0; t < tenants; ++t) {
            if (healed[t]) continue;
            const serve::TenantHandle* h =
                service.registry().find(serve::TenantId(t));
            std::fprintf(stderr,
                         "unrecovered tenant %llu: queued %zu, breaker "
                         "%s, gateway %s, inner %s\n",
                         (unsigned long long)t,
                         service.admission().depth(serve::TenantId(t)),
                         service.pool().breakerOpen(serve::TenantId(t))
                             ? "open"
                             : "closed",
                         h && service.registry().gatewayCrashed(
                                  h->gatewayIndex)
                             ? "crashed"
                             : "up",
                         h ? (h->inner ? "alive" : "missing") : "gone");
        }
    }

    const auto& counters = machine.trace().counters();
    std::uint64_t failures = 0;
    for (const auto& client : clients) failures += client->failures();

    std::printf("nesgx_serve: %llu tenants, %llu requests%s%s\n",
                (unsigned long long)tenants, (unsigned long long)submitted,
                cvm ? " [cvm depth-3]" : "", chaos ? " [chaos]" : "");
    std::printf("  gateways            : %zu\n",
                service.registry().gatewayCount());
    std::printf("  verified ok         : %llu\n",
                (unsigned long long)completedOk);
    std::printf("  integrity failures  : %llu\n",
                (unsigned long long)failures);
    std::printf("  shed (deadline)     : %llu\n",
                (unsigned long long)service.admission().shed());
    std::printf("  backpressured       : %llu\n",
                (unsigned long long)backpressured);
    std::printf("  batches             : %llu (%.2f req/batch)\n",
                (unsigned long long)counters.serveBatches,
                counters.serveBatches
                    ? double(counters.serveBatchedRequests) /
                          double(counters.serveBatches)
                    : 0.0);
    std::printf("  tenant evictions    : %llu (reloads %llu)\n",
                (unsigned long long)counters.serveTenantEvictions,
                (unsigned long long)counters.serveTenantReloads);
    std::printf("  EENTER/NEENTER      : %llu / %llu\n",
                (unsigned long long)counters.eenterCount,
                (unsigned long long)counters.neenterCount);
    if (switchless) {
        const std::uint64_t transitions = counters.eenterCount +
                                          counters.neenterCount -
                                          transitionsBase;
        const auto* engine = service.switchlessEngine();
        std::printf("  switchless          : %zu channels, %llu ring calls, "
                    "%llu polls\n",
                    armedChannels,
                    (unsigned long long)(engine
                                             ? engine->engineStats().calls
                                                   .load()
                                             : 0),
                    (unsigned long long)counters.switchlessPolls);
        std::printf("  transitions/request : %.4f (post-arming)\n",
                    submitted ? double(transitions) / double(submitted) : 0.0);
    }
    std::printf("  latency cycles      : p50 %llu  p95 %llu  p99 %llu\n",
                (unsigned long long)latency.p50(),
                (unsigned long long)latency.p95(),
                (unsigned long long)latency.p99());
    if (attest) {
        std::printf("  attested onboarding : %llu tenants (session keys "
                    "EGETKEY-rooted)\n",
                    (unsigned long long)tenants);
    }
    if (migrateEvery > 0) {
        const auto& ms = migrator.stats();
        std::printf("  --- live migration ---\n");
        std::printf("  migrations          : %llu attempted, %llu "
                    "committed, %llu aborted (%llu rolled back)\n",
                    (unsigned long long)ms.attempts,
                    (unsigned long long)ms.gatewayMoves,
                    (unsigned long long)ms.aborted,
                    (unsigned long long)ms.rolledBack);
        std::printf("  pages drained       : %llu\n",
                    (unsigned long long)ms.pagesDrained);
        std::printf("  migration cycles    : p50 %llu  p95 %llu\n",
                    (unsigned long long)ms.latency.p50(),
                    (unsigned long long)ms.latency.p95());
    }

    std::size_t distinctSites = 0;
    if (injector) {
        const serve::WorkerPool& pool = service.pool();
        std::printf("  --- fault injection / self-healing ---\n");
        std::printf("  faults injected     : %llu\n",
                    (unsigned long long)injector->totalInjected());
        for (std::size_t s = 0; s < fault::kFaultSiteCount; ++s) {
            const auto site = fault::FaultSite(s);
            if (injector->injected(site) == 0) continue;
            ++distinctSites;
            std::printf("    %-17s : %llu (of %llu occurrences)\n",
                        fault::siteName(site),
                        (unsigned long long)injector->injected(site),
                        (unsigned long long)injector->occurrences(site));
        }
        std::printf("  typed errors        : %llu\n",
                    (unsigned long long)typedErrors);
        for (std::size_t e = 0; e < kErrCount; ++e) {
            if (typedByErr[e] == 0) continue;
            std::printf("    %-17s : %llu\n", errName(Err(e)),
                        (unsigned long long)typedByErr[e]);
        }
        std::printf("  silent empties      : %llu\n",
                    (unsigned long long)silentEmpties);
        std::printf("  retries             : %llu\n",
                    (unsigned long long)pool.retries());
        std::printf("  tenant rebuilds     : %llu (subtree %llu)\n",
                    (unsigned long long)pool.rebuilds(),
                    (unsigned long long)pool.subtreeRebuilds());
        std::printf("  breaker open/close  : %llu / %llu\n",
                    (unsigned long long)pool.breakerOpens(),
                    (unsigned long long)pool.breakerCloses());
        std::printf("  watermark misses    : %llu\n",
                    (unsigned long long)service.pressure().watermarkMisses());
        if (!pool.rebuildLatency().empty()) {
            std::printf("  rebuild cycles      : p50 %llu  p95 %llu\n",
                        (unsigned long long)pool.rebuildLatency().p50(),
                        (unsigned long long)pool.rebuildLatency().p95());
        }
        std::printf("  recovered tenants   : %llu / %llu\n",
                    (unsigned long long)recovered,
                    (unsigned long long)tenants);
    }
    if (supervisor) {
        const auto& ss = supervisor->stats();
        std::printf("  --- supervision ---\n");
        std::printf("  watchdog ticks      : %llu (wedges %llu)\n",
                    (unsigned long long)ss.ticks,
                    (unsigned long long)ss.wedges);
        std::printf("  ladder actions      : kick %llu, tenant rebuild "
                    "%llu, subtree rebuild %llu, evacuate %llu\n",
                    (unsigned long long)ss.kicks,
                    (unsigned long long)ss.tenantRebuilds,
                    (unsigned long long)ss.subtreeRebuilds,
                    (unsigned long long)ss.evacuations);
        if (!ss.detectionLatency.empty()) {
            std::printf("  detection cycles    : p50 %llu  p95 %llu\n",
                        (unsigned long long)ss.detectionLatency.p50(),
                        (unsigned long long)ss.detectionLatency.p95());
        }
    }

    if (sink) {
        // Parallel mode buffers events per shard; drain the merged,
        // seq-ordered stream into the sink before detaching it.
        if (machine.trace().parallelEnabled()) {
            machine.trace().disableParallel();
        }
        machine.trace().unsubscribe(sink.get());
        if (!sink->writeFile(tracePath)) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         tracePath.c_str());
            return 1;
        }
        std::printf("  [chrome trace written to %s]\n", tracePath.c_str());
    }

    bool fail = failures > 0 || silentEmpties > 0;
    if (failures > 0) {
        std::fprintf(stderr, "FAIL: %llu integrity failures\n",
                     (unsigned long long)failures);
    }
    if (silentEmpties > 0) {
        std::fprintf(stderr, "FAIL: %llu completions failed without a "
                             "typed error\n",
                     (unsigned long long)silentEmpties);
    }
    if (injector && recovered < tenants) {
        std::fprintf(stderr, "FAIL: only %llu/%llu tenants recovered\n",
                     (unsigned long long)recovered,
                     (unsigned long long)tenants);
        fail = true;
    }
    if (chaos) {
        if (injector->totalInjected() == 0 || distinctSites < 5) {
            std::fprintf(stderr,
                         "FAIL: chaos run injected %llu faults at %zu "
                         "sites (need > 0 at >= 5 sites)\n",
                         (unsigned long long)injector->totalInjected(),
                         distinctSites);
            fail = true;
        }
        if (service.pool().rebuilds() == 0) {
            std::fprintf(stderr, "FAIL: chaos run rebuilt no tenant\n");
            fail = true;
        }
        // Supervised chaos armed the failure-domain sites, and a
        // crashed gateway / wedged poller only heals through the
        // watchdog: the run is broken if the ladder never fired. (Which
        // rung fires depends on the dispatch path — classic dispatch
        // trips gateway-crash into subtree rebuilds, the switchless path
        // trips poller-wedge into kicks.)
        if (supervisor) {
            const auto& ss = supervisor->stats();
            const std::uint64_t ladderActions =
                ss.kicks + ss.tenantRebuilds + ss.subtreeRebuilds +
                ss.evacuations;
            if (ss.wedges == 0 || ladderActions == 0) {
                std::fprintf(stderr,
                             "FAIL: supervised chaos run must wedge (got "
                             "%llu) and act (got %llu ladder actions)\n",
                             (unsigned long long)ss.wedges,
                             (unsigned long long)ladderActions);
                fail = true;
            }
        }
    }
    if (migrateEvery > 0 && migrator.stats().gatewayMoves == 0) {
        std::fprintf(stderr, "FAIL: --migrate armed but no live "
                             "migration committed\n");
        fail = true;
    }
    if (fail) return 1;
    std::printf("OK\n");
    return 0;
}
