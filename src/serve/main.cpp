/**
 * nesgx_serve: multi-tenant serving demo over the emulated nested-SGX
 * machine. Spins up N tenants (one inner enclave each, pooled into
 * shared gateway outers), pushes a closed-loop request stream through
 * the admission controller and worker pool, and verifies every sealed
 * response client-side.
 *
 *   nesgx_serve --tenants 8 --requests 200 [--batch 8] [--epc-pages 0]
 *               [--deadline 0] [--queue-depth 64] [--chrome-trace p.json]
 *
 * Exits nonzero on any integrity failure, making it usable as a CI
 * smoke test.
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "serve/client.h"
#include "serve/service.h"
#include "trace/chrome_sink.h"

namespace {

using namespace nesgx;

/** Minimal flag parser (mirrors bench_util, which the src tree cannot
 *  include from here without inverting the layering). */
std::uint64_t
flagU64(int argc, char** argv, const char* name, std::uint64_t fallback)
{
    const std::string want = std::string("--") + name;
    for (int i = 1; i + 1 < argc; ++i) {
        if (want == argv[i]) return std::stoull(argv[i + 1]);
    }
    return fallback;
}

std::string
flagStr(int argc, char** argv, const char* name, const std::string& fallback)
{
    const std::string want = std::string("--") + name;
    for (int i = 1; i + 1 < argc; ++i) {
        if (want == argv[i]) return argv[i + 1];
    }
    return fallback;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::uint64_t tenants = flagU64(argc, argv, "tenants", 8);
    const std::uint64_t requests = flagU64(argc, argv, "requests", 200);
    const std::uint64_t batch = flagU64(argc, argv, "batch", 8);
    const std::uint64_t epcPages = flagU64(argc, argv, "epc-pages", 0);
    const std::uint64_t deadline = flagU64(argc, argv, "deadline", 0);
    const std::uint64_t queueDepth = flagU64(argc, argv, "queue-depth", 64);
    const std::string tracePath = flagStr(argc, argv, "chrome-trace", "");

    sgx::Machine::Config mc;
    mc.dramBytes = 256ull << 20;
    mc.prmBase = 128ull << 20;
    mc.prmBytes = 64ull << 20;
    if (epcPages > 0) {
        // Shrink the PRM so EPC pressure kicks in at small scale.
        mc.prmBytes = (epcPages + 64) * hw::kPageSize;
    }
    sgx::Machine machine(mc);
    os::Kernel kernel(machine);
    os::Pid pid = kernel.createProcess();
    sdk::Urts urts(kernel, pid);
    for (hw::CoreId c = 0; c < machine.coreCount(); ++c) {
        kernel.schedule(c, pid);
    }

    std::unique_ptr<trace::ChromeTraceSink> sink;
    if (!tracePath.empty()) {
        sink = std::make_unique<trace::ChromeTraceSink>(2400.0, false);
        machine.trace().subscribe(sink.get());
    }

    serve::TenantService::Config sc;
    sc.admission.maxQueueDepth = queueDepth;
    sc.admission.deadlineCycles = deadline;
    sc.pool.batchSize = batch;
    serve::TenantService service(urts, sc);

    // sql only without deadline shedding (shadow-db expectations need
    // lossless delivery); under deadlines stick to per-request ones.
    const std::vector<serve::Workload> mix =
        deadline == 0 ? std::vector<serve::Workload>{serve::Workload::Echo,
                                                     serve::Workload::Sql,
                                                     serve::Workload::Svm}
                      : std::vector<serve::Workload>{serve::Workload::Echo,
                                                     serve::Workload::Svm};

    std::vector<std::unique_ptr<serve::TenantClient>> clients;
    for (std::uint64_t t = 0; t < tenants; ++t) {
        auto workload = mix[t % mix.size()];
        auto handle = service.addTenant(serve::TenantId(t), workload);
        if (!handle) {
            std::fprintf(stderr, "error: tenant %llu: %s\n",
                         (unsigned long long)t, handle.status().name());
            return 1;
        }
        clients.push_back(std::make_unique<serve::TenantClient>(
            serve::TenantId(t), workload));
    }

    serve::Histogram latency;
    std::uint64_t completedOk = 0;
    std::uint64_t refused = 0;
    std::uint64_t backpressured = 0;

    auto drainInto = [&]() {
        for (serve::Completion& done : service.drain()) {
            latency.add(done.latencyCycles);
            if (clients[done.tenant]->onResponse(done.sealedResponse)) {
                ++completedOk;
            } else {
                ++refused;
            }
        }
    };

    // Closed loop: every tenant keeps one small window in flight.
    std::uint64_t submitted = 0;
    std::uint64_t cursor = 0;
    while (submitted < requests) {
        const serve::TenantId t = serve::TenantId(cursor % tenants);
        ++cursor;
        Bytes req = clients[t]->nextRequest();
        Status st = service.submit(t, std::move(req));
        if (st.code() == Err::Backpressure) {
            ++backpressured;
            clients[t]->onDropped();
            service.pump(4);  // let the pool catch up, then move on
            drainInto();
            continue;
        }
        if (!st) {
            std::fprintf(stderr, "error: submit: %s\n", st.name());
            return 1;
        }
        ++submitted;
        if (submitted % (batch * tenants) == 0) {
            service.pump();
            drainInto();
        }
    }
    service.pump();
    drainInto();

    const auto& counters = machine.trace().counters();
    std::uint64_t failures = 0;
    for (const auto& client : clients) failures += client->failures();

    std::printf("nesgx_serve: %llu tenants, %llu requests\n",
                (unsigned long long)tenants, (unsigned long long)submitted);
    std::printf("  gateways            : %zu\n",
                service.registry().gatewayCount());
    std::printf("  verified ok         : %llu\n",
                (unsigned long long)completedOk);
    std::printf("  integrity failures  : %llu\n",
                (unsigned long long)failures);
    std::printf("  shed (deadline)     : %llu\n",
                (unsigned long long)service.admission().shed());
    std::printf("  backpressured       : %llu\n",
                (unsigned long long)backpressured);
    std::printf("  batches             : %llu (%.2f req/batch)\n",
                (unsigned long long)counters.serveBatches,
                counters.serveBatches
                    ? double(counters.serveBatchedRequests) /
                          double(counters.serveBatches)
                    : 0.0);
    std::printf("  tenant evictions    : %llu (reloads %llu)\n",
                (unsigned long long)counters.serveTenantEvictions,
                (unsigned long long)counters.serveTenantReloads);
    std::printf("  EENTER/NEENTER      : %llu / %llu\n",
                (unsigned long long)counters.eenterCount,
                (unsigned long long)counters.neenterCount);
    std::printf("  latency cycles      : p50 %llu  p95 %llu  p99 %llu\n",
                (unsigned long long)latency.p50(),
                (unsigned long long)latency.p95(),
                (unsigned long long)latency.p99());

    if (sink) {
        machine.trace().unsubscribe(sink.get());
        if (!sink->writeFile(tracePath)) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         tracePath.c_str());
            return 1;
        }
        std::printf("  [chrome trace written to %s]\n", tracePath.c_str());
    }

    if (failures > 0) {
        std::fprintf(stderr, "FAIL: %llu integrity failures\n",
                     (unsigned long long)failures);
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
