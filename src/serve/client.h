/**
 * TenantClient: the untrusted-network side of one tenant.
 *
 * Generates deterministic workload requests (echo / sql / svm), seals
 * them under the tenant key, and verifies every sealed response
 * byte-for-byte against a locally computed expectation — for sql that
 * means replaying the same statement on a shadow database, for svm
 * recomputing the linear score. This is the end-to-end integrity check
 * the pressure experiments rely on: if an eviction/reload cycle ever
 * corrupted tenant state, responses stop matching.
 */
#pragma once

#include <map>

#include "db/executor.h"
#include "serve/protocol.h"
#include "support/rng.h"

namespace nesgx::serve {

class TenantClient {
  public:
    /** `sessionKey` is the attested EGETKEY-rooted key handed out by
     *  TenantService::sessionKeyFor; empty falls back to the legacy
     *  out-of-band tenantKey() (pre-trust-path deployments). */
    TenantClient(TenantId tenant, Workload workload,
                 ByteView sessionKey = ByteView{});

    TenantId tenant() const { return tenant_; }
    Workload workload() const { return workload_; }

    /** Builds and seals the next request (seq advances every call, even
     *  if the service later sheds it). */
    Bytes nextRequest();

    // --- epoch fencing (placement-aware clients) ---------------------

    /** nextRequest() wrapped in the host-side epoch envelope for
     *  TenantService::submitStamped. Call onPlacement first. */
    Bytes nextStampedRequest();

    /** Adopts a freshly resolved placement: `epoch` stamps every future
     *  request; an `incarnation` change means the server lost in-enclave
     *  state, so the client resets exactly as onTenantRebuilt (the seal
     *  targets a fresh instance). Resets the redirect backoff. */
    void onPlacement(std::uint64_t epoch, std::uint64_t incarnation);

    /** One Err::WrongEpoch redirect: counts it and returns how many
     *  cycles to back off before re-resolving placement and retrying —
     *  exponential in the consecutive-redirect count, with deterministic
     *  seeded jitter so a fleet of redirected clients never thunders
     *  back in lockstep. */
    std::uint64_t onWrongEpoch();

    std::uint64_t epoch() const { return epoch_; }
    std::uint64_t redirectsSeen() const { return redirects_; }

    /** Verifies one sealed response; false on any mismatch. An empty
     *  response (shed/refused marker) counts as a failure here — track
     *  those separately with `onDropped`. */
    bool onResponse(ByteView sealedResponse);

    /** Records that a request was shed/rejected (drops its pending
     *  expectation so bookkeeping stays bounded). */
    void onDropped();

    /** The server rebuilt this tenant's enclave from scratch: resets the
     *  client to mirror it — outstanding expectations can never verify,
     *  the sql shadow restarts empty, and sealing resumes from seq 1 (a
     *  fresh server accepts any first sequence). Safe to call once per
     *  rebuild-marked completion — repeats re-clear already-empty state. */
    void onTenantRebuilt();

    std::uint64_t requestsSent() const { return sendSeq_; }
    std::uint64_t verified() const { return verified_; }
    std::uint64_t failures() const { return failures_; }
    std::uint64_t rebuildsSeen() const { return rebuildsSeen_; }
    std::size_t pending() const { return expected_.size(); }

  private:
    Bytes makePlaintext(std::uint64_t seq, Bytes& expectedResponse);

    TenantId tenant_;
    Workload workload_;
    crypto::AesGcm gcm_;
    Rng rng_;
    std::uint64_t sendSeq_ = 0;
    /** seq -> expected response plaintext, FIFO-dropped via onDropped. */
    std::map<std::uint64_t, Bytes> expected_;
    db::Database shadowDb_;
    std::uint64_t sqlStep_ = 0;
    std::uint64_t verified_ = 0;
    std::uint64_t failures_ = 0;
    std::uint64_t rebuildsSeen_ = 0;
    /** Placement cache for epoch fencing (0 = never resolved). */
    std::uint64_t epoch_ = 0;
    std::uint64_t incarnation_ = 0;
    std::uint64_t redirects_ = 0;
    std::uint64_t consecutiveRedirects_ = 0;
    /** Separate stream from rng_ so backoff jitter never perturbs the
     *  deterministic request payloads. */
    Rng backoffRng_;
};

}  // namespace nesgx::serve
