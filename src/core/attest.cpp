#include "core/attest.h"

#include <algorithm>

namespace nesgx::core {

namespace {

bool
sameMeasurement(const sgx::Measurement& a, const sgx::Measurement& b)
{
    return constantTimeEqual(ByteView(a.data(), a.size()),
                             ByteView(b.data(), b.size()));
}

}  // namespace

AttestationResult
verifyNestedAttestation(const sgx::Machine& machine,
                        const sgx::NestedReport& report,
                        const sgx::Measurement& verifierMr,
                        const AttestationPolicy& policy)
{
    AttestationResult result;
    result.macValid = machine.verifyNestedReport(report, verifierMr);
    result.identityMatch =
        sameMeasurement(report.base.mrenclave, policy.expectedMrEnclave);

    if (policy.expectedOuter) {
        result.outerMatch =
            report.nested() &&
            sameMeasurement(report.outerMeasurement, *policy.expectedOuter);
    } else {
        result.outerMatch = !report.nested();
    }

    // Depth policy: exact when pinned; otherwise only require structural
    // consistency with `expectedOuter` (nested iff an outer is expected).
    if (policy.expectedChainDepth) {
        result.depthMatch = report.chainDepth == *policy.expectedChainDepth;
    } else {
        result.depthMatch =
            policy.expectedOuter ? report.nested() : !report.nested();
    }

    result.noUnexpectedInners = true;
    for (const auto& inner : report.innerMeasurements) {
        bool known = std::any_of(
            policy.allowedInners.begin(), policy.allowedInners.end(),
            [&](const sgx::Measurement& m) {
                return sameMeasurement(m, inner);
            });
        if (!known) {
            result.noUnexpectedInners = false;
            break;
        }
    }
    return result;
}

}  // namespace nesgx::core
