#include "core/channel.h"

namespace nesgx::core {

namespace {

constexpr std::uint64_t kHeaderBytes = 16;  // head + tail cursors

/** Copies into a ring with wrap-around via validated enclave writes. */
Status
ringWrite(sdk::TrustedEnv& env, hw::Vaddr dataVa, std::uint64_t capacity,
          std::uint64_t offset, ByteView bytes)
{
    std::uint64_t pos = offset % capacity;
    std::uint64_t first = std::min<std::uint64_t>(bytes.size(), capacity - pos);
    Status st = env.writeBytes(dataVa + pos, ByteView(bytes.data(), first));
    if (!st) return st;
    if (first < bytes.size()) {
        st = env.writeBytes(dataVa, ByteView(bytes.data() + first,
                                             bytes.size() - first));
    }
    return st;
}

Result<Bytes>
ringRead(sdk::TrustedEnv& env, hw::Vaddr dataVa, std::uint64_t capacity,
         std::uint64_t offset, std::uint64_t len)
{
    std::uint64_t pos = offset % capacity;
    std::uint64_t first = std::min<std::uint64_t>(len, capacity - pos);
    auto head = env.readBytes(dataVa + pos, first);
    if (!head) return head.status();
    Bytes out = std::move(head.value());
    if (first < len) {
        auto rest = env.readBytes(dataVa, len - first);
        if (!rest) return rest.status();
        append(out, rest.value());
    }
    return out;
}

}  // namespace

// ------------------------------------------------------------- OuterChannel

Result<OuterChannel>
OuterChannel::create(sdk::LoadedEnclave& owner, std::uint64_t capacity)
{
    hw::Vaddr base = owner.heap().alloc(kHeaderBytes + capacity);
    if (base == 0) return Err::OutOfMemory;
    OuterChannel ch;
    ch.headVa_ = base;
    ch.tailVa_ = base + 8;
    ch.dataVa_ = base + kHeaderBytes;
    ch.capacity_ = capacity;
    return ch;
}

Result<std::uint64_t>
OuterChannel::freeSpace(sdk::TrustedEnv& env) const
{
    auto head = env.readU64(headVa_);
    if (!head) return head.status();
    auto tail = env.readU64(tailVa_);
    if (!tail) return tail.status();
    return capacity_ - (tail.value() - head.value());
}

Status
OuterChannel::send(sdk::TrustedEnv& env, ByteView message) const
{
    auto head = env.readU64(headVa_);
    if (!head) return head.status();
    auto tail = env.readU64(tailVa_);
    if (!tail) return tail.status();

    std::uint64_t need = 8 + message.size();
    if (need > capacity_ - (tail.value() - head.value())) {
        return Err::OutOfMemory;
    }

    std::uint8_t lenBuf[8];
    storeLe64(lenBuf, message.size());
    Status st = ringWrite(env, dataVa_, capacity_, tail.value(),
                          ByteView(lenBuf, 8));
    if (!st) return st;
    st = ringWrite(env, dataVa_, capacity_, tail.value() + 8, message);
    if (!st) return st;
    return env.writeU64(tailVa_, tail.value() + need);
}

Result<Bytes>
OuterChannel::recv(sdk::TrustedEnv& env) const
{
    auto head = env.readU64(headVa_);
    if (!head) return head.status();
    auto tail = env.readU64(tailVa_);
    if (!tail) return tail.status();
    if (head.value() == tail.value()) return Err::BadCallBuffer;  // empty

    auto lenBytes = ringRead(env, dataVa_, capacity_, head.value(), 8);
    if (!lenBytes) return lenBytes.status();
    std::uint64_t len = loadLe64(lenBytes.value().data());
    if (len > capacity_) return Err::BadCallBuffer;

    auto body = ringRead(env, dataVa_, capacity_, head.value() + 8, len);
    if (!body) return body.status();
    Status st = env.writeU64(headVa_, head.value() + 8 + len);
    if (!st) return st;
    return body;
}

Result<bool>
OuterChannel::empty(sdk::TrustedEnv& env) const
{
    auto head = env.readU64(headVa_);
    if (!head) return head.status();
    auto tail = env.readU64(tailVa_);
    if (!tail) return tail.status();
    return head.value() == tail.value();
}

// --------------------------------------------------------------- GcmChannel

Result<GcmChannel>
GcmChannel::create(sdk::Urts& urts, std::uint64_t capacity, ByteView key)
{
    GcmChannel ch;
    std::uint64_t pages = (capacity + hw::kPageSize - 1) / hw::kPageSize;
    ch.dataVa_ = urts.kernel().mapUntrusted(urts.pid(), pages);
    ch.capacity_ = pages * hw::kPageSize;
    ch.gcm_ = std::make_unique<crypto::AesGcm>(key);
    return ch;
}

Status
GcmChannel::send(sdk::TrustedEnv& env, ByteView message)
{
    // Software authenticated encryption before anything leaves the
    // enclave: IV from the sequence number, AAD binds the sequence.
    Bytes iv(crypto::kGcmIvSize, 0);
    storeLe64(iv.data(), sendSeq_);
    Bytes aad(8);
    storeLe64(aad.data(), sendSeq_);
    Bytes sealed = gcm_->seal(iv, aad, message);
    env.chargeGcm(message.size());
    ++sendSeq_;

    std::uint64_t need = 8 + sealed.size();
    if (need > capacity_ - (tail_ - head_)) return Err::OutOfMemory;

    std::uint8_t lenBuf[8];
    storeLe64(lenBuf, sealed.size());
    Status st =
        ringWrite(env, dataVa_, capacity_, tail_, ByteView(lenBuf, 8));
    if (!st) return st;
    st = ringWrite(env, dataVa_, capacity_, tail_ + 8, sealed);
    if (!st) return st;
    tail_ += need;
    return Status::ok();
}

Result<Bytes>
GcmChannel::recv(sdk::TrustedEnv& env)
{
    if (head_ == tail_) return Err::BadCallBuffer;  // empty

    auto lenBytes = ringRead(env, dataVa_, capacity_, head_, 8);
    if (!lenBytes) return lenBytes.status();
    std::uint64_t len = loadLe64(lenBytes.value().data());
    if (len > capacity_) return Err::BadCallBuffer;

    auto sealed = ringRead(env, dataVa_, capacity_, head_ + 8, len);
    if (!sealed) return sealed.status();

    Bytes iv(crypto::kGcmIvSize, 0);
    storeLe64(iv.data(), recvSeq_);
    Bytes aad(8);
    storeLe64(aad.data(), recvSeq_);
    auto plain = gcm_->open(iv, aad, sealed.value());
    if (!plain) return plain.status();
    env.chargeGcm(plain.value().size());
    ++recvSeq_;
    head_ += 8 + len;
    return plain;
}

Status
GcmChannel::tamperNext(sdk::Urts& urts, hw::CoreId core)
{
    if (head_ == tail_) return Err::BadCallBuffer;
    // The OS flips one ciphertext bit of the pending message in place.
    std::uint64_t pos = (head_ + 8) % capacity_;
    auto pa = urts.machine().translate(core, dataVa_ + pos, hw::Access::Read);
    if (!pa) return pa.status();
    std::uint8_t b = *urts.machine().mem().raw(pa.value());
    b ^= 0x01;
    urts.machine().mem().write(pa.value(), &b, 1);
    return Status::ok();
}

}  // namespace nesgx::core
