#include "core/compose.h"

namespace nesgx::core {

const crypto::RsaKeyPair&
defaultAuthorKey()
{
    static const crypto::RsaKeyPair key = [] {
        Rng rng(0xDEFA017);
        return crypto::RsaKeyPair::generate(rng, 1024);
    }();
    return key;
}

sdk::LoadedEnclave*
NestedApp::inner(const std::string& name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? nullptr : it->second;
}

Result<Bytes>
NestedApp::callOuter(const std::string& fn, ByteView arg, hw::CoreId core)
{
    return urts_->ecall(outer_, fn, arg, core);
}

Result<Bytes>
NestedApp::callInner(const std::string& innerName, const std::string& fn,
                     ByteView arg, hw::CoreId core)
{
    sdk::LoadedEnclave* target = inner(innerName);
    if (!target) return Err::NoSuchCall;
    return urts_->ecallNested(outer_, target, fn, arg, core);
}

NestedAppBuilder&
NestedAppBuilder::outer(sdk::EnclaveSpec spec)
{
    outerSpec_ = std::move(spec);
    return *this;
}

NestedAppBuilder&
NestedAppBuilder::addInner(sdk::EnclaveSpec spec)
{
    innerSpecs_.push_back(std::move(spec));
    return *this;
}

NestedAppBuilder&
NestedAppBuilder::signer(const crypto::RsaKeyPair& key)
{
    signer_ = &key;
    return *this;
}

Result<NestedApp>
NestedAppBuilder::build()
{
    const crypto::RsaKeyPair& key = signer_ ? *signer_ : defaultAuthorKey();

    // Each inner's signed file names the outer's expected measurement.
    sgx::Measurement outerMr = sdk::predictMeasurement(outerSpec_);
    std::vector<sdk::SignedEnclave> innerImages;
    for (auto spec : innerSpecs_) {
        spec.expectedOuter = sgx::PeerExpectation{};
        spec.expectedOuter->mrenclave = outerMr;
        innerImages.push_back(sdk::buildImage(spec, key));
    }

    // The outer's signed file lists every allowed inner measurement.
    sdk::EnclaveSpec outerSpec = outerSpec_;
    for (const auto& image : innerImages) {
        sgx::PeerExpectation allow;
        allow.mrenclave = image.mrenclave;
        outerSpec.allowedInners.push_back(allow);
    }
    sdk::SignedEnclave outerImage = sdk::buildImage(outerSpec, key);

    NestedApp app;
    app.urts_ = urts_;
    auto outerLoaded = urts_->load(outerImage);
    if (!outerLoaded) return outerLoaded.status();
    app.outer_ = outerLoaded.value();

    for (std::size_t i = 0; i < innerImages.size(); ++i) {
        auto loaded = urts_->load(innerImages[i]);
        if (!loaded) return loaded.status();
        Status st = urts_->associate(loaded.value(), app.outer_);
        if (!st) return st;
        app.inners_.push_back(loaded.value());
        app.byName_[innerSpecs_[i].name] = loaded.value();
    }
    return app;
}

Result<sdk::LoadedEnclave*>
loadMonolithic(sdk::Urts& urts, sdk::EnclaveSpec spec,
               const crypto::RsaKeyPair* key)
{
    const crypto::RsaKeyPair& k = key ? *key : defaultAuthorKey();
    return urts.load(sdk::buildImage(spec, k));
}

}  // namespace nesgx::core
