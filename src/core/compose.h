/**
 * High-level nested-enclave composition.
 *
 * NestedAppBuilder wires up the full paper workflow in one place: it
 * predicts peer measurements, embeds the mutual expectations into each
 * signed file (paper §IV-C / Fig. 4), builds + loads every image, and
 * runs NASSO for each (inner, outer) pair. This is the public API an
 * application developer would use; the case studies and benchmarks all go
 * through it.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sdk/runtime.h"

namespace nesgx::core {

class NestedApp {
  public:
    sdk::LoadedEnclave* outer() const { return outer_; }
    sdk::LoadedEnclave* inner(const std::string& name) const;
    const std::vector<sdk::LoadedEnclave*>& inners() const { return inners_; }

    /** ecall into the outer enclave. */
    Result<Bytes> callOuter(const std::string& fn, ByteView arg,
                            hw::CoreId core = 0);

    /** ecall + n_ecall into a named inner enclave. */
    Result<Bytes> callInner(const std::string& innerName,
                            const std::string& fn, ByteView arg,
                            hw::CoreId core = 0);

  private:
    friend class NestedAppBuilder;
    sdk::Urts* urts_ = nullptr;
    sdk::LoadedEnclave* outer_ = nullptr;
    std::vector<sdk::LoadedEnclave*> inners_;
    std::map<std::string, sdk::LoadedEnclave*> byName_;
};

class NestedAppBuilder {
  public:
    explicit NestedAppBuilder(sdk::Urts& urts) : urts_(&urts) {}

    /** Sets the outer enclave spec (library / shared tier). */
    NestedAppBuilder& outer(sdk::EnclaveSpec spec);

    /** Adds an inner enclave spec (security-sensitive tier). */
    NestedAppBuilder& addInner(sdk::EnclaveSpec spec);

    /** Signs with this author key (defaults to a fresh deterministic key). */
    NestedAppBuilder& signer(const crypto::RsaKeyPair& key);

    /**
     * Builds, loads and associates everything.
     * The outer's signed file lists each inner's measurement; each inner's
     * signed file names the outer's measurement.
     */
    Result<NestedApp> build();

  private:
    sdk::Urts* urts_;
    sdk::EnclaveSpec outerSpec_;
    std::vector<sdk::EnclaveSpec> innerSpecs_;
    const crypto::RsaKeyPair* signer_ = nullptr;
};

/** Deterministic library-wide default author key (RSA-1024). */
const crypto::RsaKeyPair& defaultAuthorKey();

/** Builds + loads a single monolithic enclave (the paper's baseline). */
Result<sdk::LoadedEnclave*> loadMonolithic(sdk::Urts& urts,
                                           sdk::EnclaveSpec spec,
                                           const crypto::RsaKeyPair* key =
                                               nullptr);

}  // namespace nesgx::core
