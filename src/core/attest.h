/**
 * Local-attestation helpers for nested enclaves (paper §IV-E).
 *
 * A challenger enclave verifies a peer's NEREPORT and, beyond the base
 * SGX identity, checks the *association relations*: which outer the peer
 * is nested in, and which inner enclaves share that outer. This is the
 * mechanism that makes the "secure binding" of §VII-B checkable by
 * software.
 */
#pragma once

#include "sdk/runtime.h"
#include "sgx/report.h"

namespace nesgx::core {

/** Result of verifying a nested report against expectations. */
struct AttestationResult {
    bool macValid = false;           ///< report MAC verified
    bool identityMatch = false;      ///< MRENCLAVE as expected
    bool outerMatch = false;         ///< nested inside the expected outer
    bool depthMatch = false;         ///< chain depth as expected
    bool noUnexpectedInners = false; ///< all attested inners were expected

    bool trusted() const
    {
        return macValid && identityMatch && outerMatch && depthMatch &&
               noUnexpectedInners;
    }
};

/** What the challenger expects of the attested enclave. */
struct AttestationPolicy {
    sgx::Measurement expectedMrEnclave{};
    /** Expected outer measurement; unset = must not be nested. */
    std::optional<sgx::Measurement> expectedOuter;
    /**
     * Exact ancestor-chain depth the challenger requires (0 = top
     * level). Unset = only the boolean nested/not-nested structure
     * implied by `expectedOuter` is enforced. A CVM operator pins its
     * tenants to depth 3; the same enclave serving from depth 2 — same
     * outer measurement, different hosting topology — is rejected.
     */
    std::optional<std::uint32_t> expectedChainDepth;
    /** Inner measurements the challenger tolerates sharing the outer. */
    std::vector<sgx::Measurement> allowedInners;
};

/**
 * Verifies a NestedReport as target enclave `verifierMr` would: MAC,
 * identity, outer binding, and the absence of unexpected co-resident
 * inner enclaves.
 */
AttestationResult verifyNestedAttestation(const sgx::Machine& machine,
                                          const sgx::NestedReport& report,
                                          const sgx::Measurement& verifierMr,
                                          const AttestationPolicy& policy);

}  // namespace nesgx::core
