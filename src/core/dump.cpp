#include "core/dump.h"

#include <map>
#include <set>
#include <sstream>

namespace nesgx::core {

namespace {

std::string
shortHex(const sgx::Measurement& m)
{
    return toHex(ByteView(m.data(), 6));
}

/** Collects all live SECS pages by probing the EPCM. */
std::vector<hw::Paddr>
liveSecsPages(const sgx::Machine& machine)
{
    std::vector<hw::Paddr> out;
    const auto& mem = machine.mem();
    for (std::uint64_t i = 0; i < machine.epcm().pageCount(); ++i) {
        const auto& entry = machine.epcm().entry(i);
        if (entry.valid && entry.type == sgx::PageType::Secs) {
            out.push_back(mem.epcPageAddr(i));
        }
    }
    return out;
}

void
dumpSubtree(const sgx::Machine& machine, hw::Paddr secsPa, int depth,
            std::set<hw::Paddr>& onPath, std::set<hw::Paddr>& printed,
            std::ostringstream& out)
{
    const sgx::Secs* secs = machine.secsAt(secsPa);
    if (!secs) return;
    // A corrupted association graph can contain a cycle (an enclave
    // reachable as its own descendant). Report it at the back edge and
    // stop instead of recursing forever; `onPath` holds the ancestors of
    // the current recursion only, so a legitimate multi-outer DAG node
    // still prints under each of its outers.
    if (onPath.count(secsPa)) {
        for (int i = 0; i < depth; ++i) out << "    ";
        out << "- eid " << secs->eid << " @0x" << std::hex << secsPa
            << std::dec << " [CYCLE: already an ancestor on this path]\n";
        return;
    }
    for (int i = 0; i < depth; ++i) out << "    ";
    out << "- eid " << secs->eid << " @0x" << std::hex << secsPa << std::dec
        << " mrenclave " << shortHex(secs->mrenclave) << "..."
        << (secs->initialized ? "" : " (uninitialized)");
    if (secs->outerEids.size() > 1) {
        out << " [multi-outer: " << secs->outerEids.size() << "]";
    }
    out << "\n";
    printed.insert(secsPa);
    onPath.insert(secsPa);
    for (hw::Paddr inner : secs->innerEids) {
        dumpSubtree(machine, inner, depth + 1, onPath, printed, out);
    }
    onPath.erase(secsPa);
}

}  // namespace

std::string
dumpEnclaveTree(const sgx::Machine& machine)
{
    std::ostringstream out;
    out << "enclave association forest:\n";
    std::set<hw::Paddr> onPath;
    std::set<hw::Paddr> printed;
    // Roots first (no outer), then anything unreachable (defensive —
    // this is where a pure cycle with no root surfaces).
    for (hw::Paddr pa : liveSecsPages(machine)) {
        const sgx::Secs* secs = machine.secsAt(pa);
        if (secs && secs->outerEids.empty()) {
            dumpSubtree(machine, pa, 1, onPath, printed, out);
        }
    }
    for (hw::Paddr pa : liveSecsPages(machine)) {
        if (!printed.count(pa)) dumpSubtree(machine, pa, 1, onPath, printed, out);
    }
    return out.str();
}

std::string
dumpStats(const sgx::Machine& machine)
{
    const auto& s = machine.stats();
    std::ostringstream out;
    out << "platform stats:\n"
        << "  simulated time    " << machine.clock().micros() << " us\n"
        << "  tlb hits/misses   " << s.tlbHits << " / " << s.tlbMisses << "\n"
        << "  nested checks     " << s.nestedChecks << "\n"
        << "  access faults     " << s.accessFaults << "\n"
        << "  eenter/eexit      " << s.eenterCount << " / " << s.eexitCount
        << "\n"
        << "  neenter/neexit    " << s.neenterCount << " / " << s.neexitCount
        << "\n"
        << "  aex / ipi         " << s.aexCount << " / " << s.ipiCount << "\n"
        << "  mee / llc lines   " << s.meeLines << " / " << s.llcHitLines
        << "\n";
    return out.str();
}

std::string
dumpEpcUsage(const sgx::Machine& machine)
{
    std::uint64_t total = machine.epcm().pageCount();
    std::uint64_t used = 0;
    std::map<sgx::PageType, std::uint64_t> byType;
    std::map<hw::Paddr, std::uint64_t> byOwner;
    for (std::uint64_t i = 0; i < total; ++i) {
        const auto& entry = machine.epcm().entry(i);
        if (!entry.valid) continue;
        ++used;
        ++byType[entry.type];
        ++byOwner[entry.ownerSecs];
    }

    std::ostringstream out;
    out << "EPC: " << used << "/" << total << " pages in use ("
        << byType[sgx::PageType::Secs] << " SECS, "
        << byType[sgx::PageType::Tcs] << " TCS, "
        << byType[sgx::PageType::Reg] << " REG)\n";
    for (const auto& [owner, pages] : byOwner) {
        const sgx::Secs* secs = machine.secsAt(owner);
        out << "  owner eid " << (secs ? secs->eid : 0) << ": " << pages
            << " pages (" << pages * hw::kPageSize / 1024 << " KiB)\n";
    }
    return out.str();
}

}  // namespace nesgx::core
