/**
 * Inter-enclave communication channels (paper §VI-C, Fig. 11).
 *
 * OuterChannel — the nested-enclave design: a ring buffer living in the
 * *outer enclave's* heap. Peer inner enclaves read/write it directly
 * through the validated memory path; the MEE (cost model) protects the
 * bytes, no software crypto runs, and data that fits in the LLC never
 * even pays MEE cost ("the data exist in plaintext within the CPU
 * boundary").
 *
 * GcmChannel — the monolithic-SGX baseline: a ring buffer in *untrusted*
 * memory, every message sealed/opened with AES-GCM by enclave software,
 * exactly the "authenticated encryption mechanisms like AES-GCM" the
 * paper requires of enclave-to-enclave messaging today.
 *
 * Both channels move real bytes through the emulated memory system so
 * correctness (including GCM tag failures under tampering) is testable,
 * while the throughput experiments read the simulated clock.
 */
#pragma once

#include "crypto/gcm.h"
#include "sdk/runtime.h"

namespace nesgx::core {

/** Header layout: [head u64][tail u64] followed by the data ring. */
class OuterChannel {
  public:
    /**
     * Allocates a channel of `capacity` data bytes in the enclave heap of
     * `owner` (the shared outer enclave).
     */
    static Result<OuterChannel> create(sdk::LoadedEnclave& owner,
                                       std::uint64_t capacity);

    /** Bytes of ring space currently free. */
    Result<std::uint64_t> freeSpace(sdk::TrustedEnv& env) const;

    /**
     * Appends one length-prefixed message. Fails with OutOfMemory when the
     * ring lacks space (caller drains first). Access validation applies:
     * only the owner and its inner enclaves can call this successfully.
     */
    Status send(sdk::TrustedEnv& env, ByteView message) const;

    /** Pops the next message, or empty optional when the ring is empty. */
    Result<Bytes> recv(sdk::TrustedEnv& env) const;

    /** True when no message is pending. */
    Result<bool> empty(sdk::TrustedEnv& env) const;

    hw::Vaddr dataVa() const { return dataVa_; }
    std::uint64_t capacity() const { return capacity_; }

  private:
    hw::Vaddr headVa_ = 0;  ///< reader cursor (absolute stream offset)
    hw::Vaddr tailVa_ = 0;  ///< writer cursor
    hw::Vaddr dataVa_ = 0;
    std::uint64_t capacity_ = 0;
};

/**
 * Baseline channel: AES-GCM over untrusted memory. The key is
 * pre-provisioned to both endpoint enclaves (as the paper assumes after
 * local attestation). Sequence numbers make replay detectable.
 */
class GcmChannel {
  public:
    /**
     * Maps `capacity` bytes of untrusted memory in the process and binds
     * the channel to a symmetric key.
     */
    static Result<GcmChannel> create(sdk::Urts& urts, std::uint64_t capacity,
                                     ByteView key);

    /** Seals and writes one message (charges software-GCM cost). */
    Status send(sdk::TrustedEnv& env, ByteView message);

    /** Reads, verifies and decrypts the next message. */
    Result<Bytes> recv(sdk::TrustedEnv& env);

    /** Untrusted-side tampering hook for tests: flips a ciphertext bit. */
    Status tamperNext(sdk::Urts& urts, hw::CoreId core = 0);

    hw::Vaddr dataVa() const { return dataVa_; }

  private:
    std::unique_ptr<crypto::AesGcm> gcm_;
    hw::Vaddr dataVa_ = 0;
    std::uint64_t capacity_ = 0;
    std::uint64_t head_ = 0;  ///< reader stream offset (enclave-side state)
    std::uint64_t tail_ = 0;  ///< writer stream offset
    std::uint64_t sendSeq_ = 0;
    std::uint64_t recvSeq_ = 0;
};

}  // namespace nesgx::core
