/**
 * Human-readable machine-state inspection: the enclave association
 * forest, per-enclave EPC usage, and platform statistics. Used by the
 * examples (and handy when debugging a new nested topology).
 */
#pragma once

#include <string>

#include "sgx/machine.h"

namespace nesgx::core {

/** Multi-line description of every live enclave and its associations. */
std::string dumpEnclaveTree(const sgx::Machine& machine);

/** One-line-per-counter platform statistics. */
std::string dumpStats(const sgx::Machine& machine);

/** EPC occupancy summary (per page type and per owner). */
std::string dumpEpcUsage(const sgx::Machine& machine);

}  // namespace nesgx::core
