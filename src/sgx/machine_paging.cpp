/**
 * EPC paging leaves: EBLOCK, ETRACK, EWB, ELDU (paper §IV-E).
 *
 * The nested-enclave delta lives in trackedCores(): evicting an outer
 * enclave's page must also flush cores running its *inner* enclaves,
 * because inner threads legitimately cache outer translations.
 */
#include "fault/injector.h"
#include "sgx/machine.h"

namespace nesgx::sgx {

Status
Machine::eblock(hw::Paddr epcPage)
{
    // Paging leaves are structural writers: exclusive. Acquisition also
    // quiesces every simulated core (see stateMutex_ in machine.h), so
    // the cross-core TLB sweeps below cannot race an in-flight access.
    std::unique_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Eblock, trace::kNoCore, epcPage,
                      [&] { return eblockImpl(epcPage); });
}

Status
Machine::eblockImpl(hw::Paddr epcPage)
{
    if (!mem_.inPrm(epcPage)) return Err::GeneralProtection;
    EpcmEntry& entry = epcm_.entry(mem_.epcPageIndex(epcPage));
    if (!entry.valid || entry.type != PageType::Reg) {
        return Err::InvalidEpcPage;
    }
    {
        // Stripe hold keeps shared-mode snapshot readers torn-free.
        auto stripe = epcm_.lockFrame(mem_.epcPageIndex(epcPage));
        entry.blocked = true;
    }
    // A blocked page must stop being reachable through cached
    // translations. Under the tagged TLB this matters even on cores that
    // already left the enclave — their entries survived the exit.
    invalidateTlbForPage(epcPage);
    return Status::ok();
}

Status
Machine::etrack(hw::Paddr secsPage)
{
    std::unique_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Etrack, trace::kNoCore, secsPage,
                      [&] { return etrackImpl(secsPage); });
}

Status
Machine::etrackImpl(hw::Paddr secsPage)
{
    Secs* secs = secsAt(secsPage);
    if (!secs) return Err::GeneralProtection;
    // Snapshot every core that may hold stale translations; cores drop out
    // of the set when their TLB is flushed (any enclave exit/IPI).
    auto cores = trackedCores(secsPage);
    {
        std::lock_guard<std::mutex> t(trackingMutex_);
        secs->trackingSet.clear();
        secs->trackingSet.insert(cores.begin(), cores.end());
        secs->trackingActive = true;
    }
    return Status::ok();
}

Result<EvictedPage>
Machine::ewb(hw::Paddr epcPage)
{
    std::unique_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Ewb, trace::kNoCore, epcPage,
                      [&] { return ewbImpl(epcPage); });
}

Result<EvictedPage>
Machine::ewbImpl(hw::Paddr epcPage)
{
    charge(costs_.ewbPage);
    if (!mem_.inPrm(epcPage)) return Err::GeneralProtection;
    EpcmEntry& entry = epcm_.entry(mem_.epcPageIndex(epcPage));
    if (!entry.valid || entry.type != PageType::Reg) {
        return Err::InvalidEpcPage;
    }
    if (!entry.blocked) return Err::PageInUse;

    Secs* secs = secsAt(entry.ownerSecs);
    if (!secs) return Err::InvalidEpcPage;
    // Every thread that may cache the stale translation must have left
    // enclave mode (and thus flushed) since ETRACK.
    {
        std::lock_guard<std::mutex> t(trackingMutex_);
        if (!secs->trackingActive || !secs->trackingSet.empty()) {
            return Err::TrackingIncomplete;
        }
    }

    EvictedPage out;
    out.vaddr = entry.vaddr;
    out.type = entry.type;
    out.perms = entry.perms;
    out.ownerEid = secs->eid;
    out.versionSlot = nextVersionSlot_++;
    out.version = 1;
    versionArray_[out.versionSlot] = out.version;
    rng_.fill(out.iv.data(), out.iv.size());

    // The page leaves the PRM for untrusted memory: real authenticated
    // encryption binds content to (owner, vaddr, perms, version) so the
    // OS can neither read, modify, swap, nor replay it.
    Bytes aad(8 * 4);
    storeLe64(aad.data(), out.ownerEid);
    storeLe64(aad.data() + 8, out.vaddr);
    storeLe64(aad.data() + 16, out.perms.bits());
    storeLe64(aad.data() + 24, out.version);
    out.ciphertext = pagingGcm_->seal(
        ByteView(out.iv.data(), out.iv.size()), aad,
        ByteView(mem_.raw(epcPage), hw::kPageSize));

    mem_.fill(epcPage, 0, hw::kPageSize);
    {
        auto stripe = epcm_.lockFrame(mem_.epcPageIndex(epcPage));
        entry = EpcmEntry{};
    }
    // Belt and braces: the frame is zeroed and free; no core may keep a
    // translation into it (EBLOCK already swept, but an ELDU between
    // EBLOCK and EWB could have revalidated in another context).
    invalidateTlbForPage(epcPage);

    // Injected storage faults model the untrusted side mangling the blob
    // after it leaves the PRM: a ciphertext bit-flip (ELDU's GCM open
    // must refuse) or version-array slot loss (replay check must refuse).
    // Either way the *hardware* stays honest — the damage only surfaces
    // as PagingIntegrity at reload time.
    if (faultFires(fault::FaultSite::EwbCorrupt)) {
        out.ciphertext[out.ciphertext.size() / 2] ^= 0x40;
    }
    if (faultFires(fault::FaultSite::EwbDropSlot)) {
        versionArray_.erase(out.versionSlot);
    }
    return out;
}

Status
Machine::eldu(hw::Paddr epcPage, hw::Paddr secsPage, const EvictedPage& blob)
{
    std::unique_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Eldu, trace::kNoCore, epcPage,
                      [&] { return elduImpl(epcPage, secsPage, blob); });
}

Status
Machine::elduImpl(hw::Paddr epcPage, hw::Paddr secsPage, const EvictedPage& blob)
{
    if (faultFires(fault::FaultSite::ElduFail)) {
        return Err::PagingIntegrity;
    }
    charge(costs_.elduPage);
    if (!mem_.inPrm(epcPage)) return Err::GeneralProtection;
    EpcmEntry& entry = epcm_.entry(mem_.epcPageIndex(epcPage));
    if (entry.valid) return Err::PageInUse;

    Secs* secs = secsAt(secsPage);
    if (!secs) return Err::GeneralProtection;
    // The blob must belong to this enclave (ids never recycle).
    if (blob.ownerEid != secs->eid) return Err::PagingIntegrity;

    // Replay protection: the version-array slot must still hold the
    // version EWB recorded; reloading consumes it.
    auto it = versionArray_.find(blob.versionSlot);
    if (it == versionArray_.end() || it->second != blob.version) {
        return Err::PagingIntegrity;
    }

    Bytes aad(8 * 4);
    storeLe64(aad.data(), blob.ownerEid);
    storeLe64(aad.data() + 8, blob.vaddr);
    storeLe64(aad.data() + 16, blob.perms.bits());
    storeLe64(aad.data() + 24, blob.version);
    auto plain = pagingGcm_->open(ByteView(blob.iv.data(), blob.iv.size()),
                                  aad, blob.ciphertext);
    if (!plain) return Err::PagingIntegrity;
    if (plain.value().size() != hw::kPageSize) return Err::PagingIntegrity;

    versionArray_.erase(it);
    mem_.write(epcPage, plain.value().data(), hw::kPageSize);
    {
        auto stripe = epcm_.lockFrame(mem_.epcPageIndex(epcPage));
        entry = EpcmEntry{};
        entry.valid = true;
        entry.type = blob.type;
        entry.ownerSecs = secsPage;
        entry.vaddr = blob.vaddr;
        entry.perms = blob.perms;
    }
    return Status::ok();
}

}  // namespace nesgx::sgx
