#include "sgx/measurement.h"

namespace nesgx::sgx {

namespace {

void
foldTag(crypto::Sha256& ctx, const char* tag)
{
    std::uint8_t buf[8] = {0};
    for (int i = 0; i < 8 && tag[i]; ++i) buf[i] = std::uint8_t(tag[i]);
    ctx.update(ByteView(buf, 8));
}

void
foldU64(crypto::Sha256& ctx, std::uint64_t v)
{
    std::uint8_t buf[8];
    storeLe64(buf, v);
    ctx.update(ByteView(buf, 8));
}

}  // namespace

void
MeasurementLog::recordCreate(std::uint64_t enclaveSize)
{
    foldTag(ctx_, "ECREATE");
    foldU64(ctx_, enclaveSize);
}

void
MeasurementLog::recordAdd(std::uint64_t pageOffset, PageType type,
                          PagePerms perms)
{
    foldTag(ctx_, "EADD");
    foldU64(ctx_, pageOffset);
    foldU64(ctx_, std::uint64_t(type));
    foldU64(ctx_, perms.bits());
}

void
MeasurementLog::recordExtend(std::uint64_t chunkOffset, ByteView chunk)
{
    foldTag(ctx_, "EEXTEND");
    foldU64(ctx_, chunkOffset);
    ctx_.update(chunk);
}

Measurement
MeasurementLog::finalize()
{
    return ctx_.finish();
}

}  // namespace nesgx::sgx
