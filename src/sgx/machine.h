/**
 * The emulated SGX machine with the nested-enclave hardware extension.
 *
 * Owns the physical memory (with PRM/EPC), the EPCM, the per-core TLBs,
 * the LLC + MEE cost path, the device root key, and implements every
 * ENCLS/ENCLU leaf the reproduction needs:
 *
 *   ENCLS (privileged, invoked by the OS model):
 *     ECREATE EADD EEXTEND EINIT EREMOVE EBLOCK ETRACK EWB ELDU NASSO
 *   ENCLU (user):
 *     EENTER ERESUME EEXIT EREPORT EGETKEY NEENTER NEEXIT NEREPORT
 *
 * plus AEX and the TLB-miss access-validation flow of paper Fig. 6.
 *
 * Model notes (documented simplifications):
 *  - EPC contents are stored as plaintext; MEE confidentiality against
 *    physical attack is modelled by cycle cost, and by real AES-GCM on the
 *    EWB/ELDU path where bits actually leave the PRM.
 *  - EEXIT requires nesting depth 1 (#GP otherwise); the SDK routes inner
 *    ocalls through the outer enclave. The paper's Fig. 5 direct
 *    inner->untrusted edge is still available for threads that EENTERed an
 *    inner enclave directly.
 *  - Version-array pages are modelled as a machine-internal replay counter
 *    table rather than VA EPC pages.
 */
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "crypto/gcm.h"
#include "hw/cache.h"
#include "hw/core.h"
#include "hw/cost_model.h"
#include "hw/page_table.h"
#include "hw/phys_memory.h"
#include "hw/sim_clock.h"
#include "sgx/epcm.h"
#include "sgx/report.h"
#include "sgx/secs.h"
#include "sgx/sigstruct.h"
#include "support/rng.h"
#include "support/status.h"
#include "trace/bus.h"

namespace nesgx::fault {
class FaultInjector;
enum class FaultSite : std::uint8_t;
}  // namespace nesgx::fault

namespace nesgx::sgx {

/** Ciphertext blob produced by EWB, held in untrusted memory by the OS. */
struct EvictedPage {
    Bytes ciphertext;        ///< page content + GCM tag
    std::array<std::uint8_t, 12> iv{};
    hw::Vaddr vaddr = 0;
    PageType type = PageType::Reg;
    PagePerms perms;
    EnclaveId ownerEid = 0;
    std::uint64_t versionSlot = 0;
    std::uint64_t version = 0;
};

class Machine {
  public:
    struct Config {
        std::uint64_t dramBytes = 256ull << 20;
        hw::Paddr prmBase = 128ull << 20;
        std::uint64_t prmBytes = 64ull << 20;
        std::uint32_t coreCount = 4;
        std::uint64_t llcBytes = 8ull << 20;
        hw::CostPreset preset = hw::CostPreset::EmulatedNested;
        std::uint64_t rngSeed = 42;
        /**
         * Context-tagged TLB: transitions switch the active SECS tag
         * instead of flushing, and `Tlb::lookup` only serves entries
         * validated under the current context (invariant 1, §VII-A).
         * Off reproduces the paper-faithful flush-on-transition costs.
         */
        bool taggedTlb = true;
        /** Per-core TLB capacity in entries (FIFO eviction). */
        std::size_t tlbCapacity = hw::Tlb::kDefaultCapacity;
        /**
         * Price the memoized outer-closure as hardware (paper §VIII
         * ablation): a closure-cache *hit* on the nested TLB-miss path
         * charges one flat `nestedCheckExtra` (an associative lookaside
         * probe) instead of one per visited ancestor, so validation
         * stays flat in nesting depth. Off (the default) charges the
         * full per-node walk every miss, the paper-faithful linear
         * cost — and keeps every historical trace byte-identical.
         */
        bool closureCacheCosts = false;
    };

    Machine();
    explicit Machine(const Config& config);

    // --- accessors ------------------------------------------------------
    hw::PhysicalMemory& mem() { return mem_; }
    const hw::PhysicalMemory& mem() const { return mem_; }
    hw::SimClock& clock() { return clock_; }
    const hw::SimClock& clock() const { return clock_; }
    const hw::CostModel& costs() const { return costs_; }
    hw::LastLevelCache& llc() { return llc_; }
    Epcm& epcm() { return epcm_; }
    const Epcm& epcm() const { return epcm_; }
    hw::Core& core(hw::CoreId id) { return cores_[id]; }
    const hw::Core& core(hw::CoreId id) const { return cores_[id]; }
    std::uint32_t coreCount() const { return std::uint32_t(cores_.size()); }
    const Config& config() const { return config_; }

    /** SECS lookup by EPC physical address (null when not a live SECS). */
    Secs* secsAt(hw::Paddr pa);
    const Secs* secsAt(hw::Paddr pa) const;
    Tcs* tcsAt(hw::Paddr pa);
    const Tcs* tcsAt(hw::Paddr pa) const;

    /**
     * Model-introspection views of the microcode-internal tables, used by
     * the orderliness checker's invariant oracle (src/check) to cross-check
     * machine state against the EPCM, the TLBs and the OS bookkeeping.
     */
    const std::map<hw::Paddr, Secs>& secsTable() const { return secsTable_; }
    const std::map<hw::Paddr, Tcs>& tcsTable() const { return tcsTable_; }

    /** Charges `cycles` on the simulated clock. */
    void charge(std::uint64_t cycles) { clock_.advance(cycles); }

    // --- ENCLS: lifecycle (machine_lifecycle.cpp) ------------------------
    /** ECREATE: turns a free EPC page into a SECS. */
    Status ecreate(hw::Paddr secsPage, hw::Vaddr baseAddr, std::uint64_t size,
                   std::uint64_t attributes);

    /**
     * EADD: adds an EPC page to an enclave. `src` supplies initial content
     * for REG pages (must be one page, or empty for zero-fill).
     */
    Status eadd(hw::Paddr secsPage, hw::Paddr epcPage, hw::Vaddr vaddr,
                PageType type, PagePerms perms, ByteView src);

    /** EEXTEND: measures the full page in 256-byte chunks. */
    Status eextend(hw::Paddr secsPage, hw::Paddr epcPage);

    /** EINIT: verifies SIGSTRUCT and finalizes the measurement. */
    Status einit(hw::Paddr secsPage, const SigStruct& sig);

    /** EREMOVE: frees an EPC page (SECS pages require all children gone). */
    Status eremove(hw::Paddr epcPage);

    /** NASSO: associates an (inner, outer) pair after mutual validation. */
    Status nasso(hw::Paddr innerSecsPage, hw::Paddr outerSecsPage);

    // --- ENCLU: transitions (machine_transitions.cpp) --------------------
    /** EENTER: untrusted -> (outer or directly inner) enclave. */
    Status eenter(hw::CoreId core, hw::Paddr tcsPage);

    /** EEXIT: enclave (depth 1) -> untrusted. */
    Status eexit(hw::CoreId core);

    /** NEENTER: outer enclave -> one of its inner enclaves. */
    Status neenter(hw::CoreId core, hw::Paddr tcsPage);

    /** NEEXIT: inner enclave -> its outer enclave. */
    Status neexit(hw::CoreId core);

    /** AEX: asynchronous exit (exception/interrupt); saves the nest. */
    Status aex(hw::CoreId core);

    /** ERESUME: restores the frame stack an AEX saved into the TCS. */
    Status eresume(hw::CoreId core, hw::Paddr tcsPage);

    // --- memory access (machine_access.cpp) ------------------------------
    /**
     * Full Fig.-6 translation + validation for the page containing `va`,
     * as seen by `core`. On success the TLB holds the entry.
     */
    Result<hw::Paddr> translate(hw::CoreId core, hw::Vaddr va, hw::Access a);

    /** Validated data read (charges translation + memory-hierarchy cost). */
    Status read(hw::CoreId core, hw::Vaddr va, std::uint8_t* out,
                std::uint64_t len);

    /** Validated data write. */
    Status write(hw::CoreId core, hw::Vaddr va, const std::uint8_t* in,
                 std::uint64_t len);

    /** Instruction-fetch check for the page containing `va`. */
    Status fetch(hw::CoreId core, hw::Vaddr va);

    // --- paging (machine_paging.cpp) -------------------------------------
    Status eblock(hw::Paddr epcPage);
    Status etrack(hw::Paddr secsPage);

    /** EWB: evicts a blocked, tracked REG page into an untrusted blob. */
    Result<EvictedPage> ewb(hw::Paddr epcPage);

    /** ELDU: reloads an evicted page into a free EPC page. */
    Status eldu(hw::Paddr epcPage, hw::Paddr secsPage,
                const EvictedPage& blob);

    /**
     * Sends IPIs to every core that may cache translations of the given
     * enclave — including cores running its inner enclaves (paper §IV-E).
     * Each hit core takes an AEX.
     */
    void ipiShootdown(hw::Paddr secsPage);

    /** Cores currently referencing the enclave or any descendant inner. */
    std::vector<hw::CoreId> trackedCores(hw::Paddr secsPage) const;

    /**
     * All outer enclaves reachable from `secsPage` through the
     * association graph (BFS order, excluding the start). A chain for
     * the default single-outer model; a DAG under kAttrMultiOuter.
     *
     * Memoized per SECS: the association graph only changes on NASSO
     * and EREMOVE, which drop the cache; a translation miss therefore
     * costs one map lookup instead of an allocating BFS. The returned
     * reference stays valid until the next NASSO/EREMOVE.
     *
     * The overload reports through `cacheHit` whether the memoized
     * closure was served — the access path uses it to price a hit as a
     * single flat check when `Config::closureCacheCosts` is on.
     */
    const std::vector<hw::Paddr>& outerClosure(hw::Paddr secsPage) const;
    const std::vector<hw::Paddr>& outerClosure(hw::Paddr secsPage,
                                               bool* cacheHit) const;

    // --- attestation (machine_attest.cpp) --------------------------------
    /** EREPORT: report of the current enclave, MAC'ed for `target`. */
    Result<Report> ereport(hw::CoreId core, const TargetInfo& target,
                           const ReportData& data);

    /** NEREPORT: EREPORT plus the attested association relations. */
    Result<NestedReport> nereport(hw::CoreId core, const TargetInfo& target,
                                  const ReportData& data);

    /** EGETKEY(report key): only inside the enclave the key belongs to. */
    Result<crypto::Sha256Digest> egetkeyReport(hw::CoreId core);

    /** EGETKEY(seal key): bound to MRSIGNER. */
    Result<crypto::Sha256Digest> egetkeySeal(hw::CoreId core);

    /** EGETKEY(identity seal key): bound to MRENCLAVE *and* MRSIGNER.
     *  The same enclave identity re-derives the same key across rebuilds
     *  and relocations (even on another gateway outer); any other code
     *  or owner identity derives an unrelated key. This is the root the
     *  serving trust path hangs tenant session keys off. */
    Result<crypto::Sha256Digest> egetkeySealIdentity(hw::CoreId core);

    /** Infrastructure view of the identity seal key: what
     *  egetkeySealIdentity returns *inside* an enclave with exactly this
     *  identity. Like verifyNestedReport, this models a party sharing
     *  the device root of trust (the paper's provisioning/verifier
     *  role); nothing in the untrusted stack can recompute it. */
    crypto::Sha256Digest identitySealingKey(const Measurement& mrenclave,
                                            const Measurement& mrsigner) const;

    /** Verifies a report's MAC as the target enclave would. */
    bool verifyReport(const Report& report, const Measurement& targetMr) const;
    bool verifyNestedReport(const NestedReport& report,
                            const Measurement& targetMr) const;

    // --- statistics / observability ---------------------------------------
    /**
     * The counter block is a *view* over the machine's trace bus: every
     * emission site publishes a typed TraceEvent and `StatsSink`
     * (trace/stats.h) folds it into these counters. The accessor API and
     * the field set are unchanged from the pre-bus inline-increment era,
     * and the values are bit-identical.
     */
    using Stats = trace::StatsCounters;
    Stats& stats() { return bus_.counters(); }
    const Stats& stats() const { return bus_.counters(); }

    /** Zeroes the counters without touching attached sinks. */
    void resetStats() { bus_.resetCounters(); }

    /**
     * The machine's trace bus: subscribe ring buffers, Chrome-trace
     * exporters or test sinks here. Mutable on purpose — tracing, like
     * the counters it replaced, is observability, not machine state.
     */
    trace::TraceBus& trace() const { return bus_; }

    // --- fault injection (src/fault) --------------------------------------
    /**
     * Arms deterministic fault injection; nullptr disarms (not owned).
     * With no injector armed every hook is one predictable null-check
     * branch, so the uninstrumented trace/counter stream — including the
     * golden corpus — stays byte-identical.
     */
    void setFaultInjector(fault::FaultInjector* injector)
    {
        faultInjector_ = injector;
    }
    fault::FaultInjector* faultInjector() const { return faultInjector_; }

    /** True when the armed injector fires at `site`; publishes the
     *  FaultInjected event. Only the null check is inline — the decision
     *  and publication live in machine.cpp, off the hot path. */
    bool faultFires(fault::FaultSite site, hw::CoreId core = trace::kNoCore)
    {
        return faultInjector_ != nullptr && faultFiresSlow(site, core);
    }

    // --- switchless ring accounting (machine_transitions.cpp) -------------
    /**
     * One poll of a switchless ring header by a parked in-enclave core:
     * charges the (cacheline-probe-sized) poll cost and publishes a
     * SwitchlessPoll event. Deliberately *not* a leaf — polls must show
     * up in the cost model and the trace without ever counting as a
     * transition, so the poll/transition trade stays honest.
     */
    void ringPoll(hw::CoreId core, std::uint64_t ringId);

    /** Host-side doorbell store after a ring post (cost only). */
    void ringDoorbell(hw::CoreId core, std::uint64_t ringId);

    /** Flushes a core's TLB and clears it from all ETRACK tracking sets. */
    void flushCoreTlb(hw::CoreId core);

    /** Charges the cacheline-granular memory-hierarchy cost for a range. */
    void chargeDataPath(hw::Paddr pa, std::uint64_t len);

  private:
    friend class MachineAccess;

    // --- leaf bodies (public leaves are thin trace wrappers) --------------
    Status ecreateImpl(hw::Paddr secsPage, hw::Vaddr baseAddr,
                       std::uint64_t size, std::uint64_t attributes);
    Status eaddImpl(hw::Paddr secsPage, hw::Paddr epcPage, hw::Vaddr vaddr,
                    PageType type, PagePerms perms, ByteView src);
    Status eextendImpl(hw::Paddr secsPage, hw::Paddr epcPage);
    Status einitImpl(hw::Paddr secsPage, const SigStruct& sig);
    Status eremoveImpl(hw::Paddr epcPage);
    Status nassoImpl(hw::Paddr innerSecsPage, hw::Paddr outerSecsPage);
    Status eenterImpl(hw::CoreId core, hw::Paddr tcsPage);
    Status eexitImpl(hw::CoreId core);
    Status neenterImpl(hw::CoreId core, hw::Paddr tcsPage);
    Status neexitImpl(hw::CoreId core);
    Status aexImpl(hw::CoreId core);
    Status eresumeImpl(hw::CoreId core, hw::Paddr tcsPage);
    Status eblockImpl(hw::Paddr epcPage);
    Status etrackImpl(hw::Paddr secsPage);
    Result<EvictedPage> ewbImpl(hw::Paddr epcPage);
    Status elduImpl(hw::Paddr epcPage, hw::Paddr secsPage,
                    const EvictedPage& blob);
    Result<Report> ereportImpl(hw::CoreId core, const TargetInfo& target,
                               const ReportData& data);
    Result<NestedReport> nereportImpl(hw::CoreId core,
                                      const TargetInfo& target,
                                      const ReportData& data);
    Result<crypto::Sha256Digest> egetkeyReportImpl(hw::CoreId core);
    Result<crypto::Sha256Digest> egetkeySealImpl(hw::CoreId core);
    Result<crypto::Sha256Digest> egetkeySealIdentityImpl(hw::CoreId core);

    /** Enclave id of the core's current (innermost) frame, 0 outside
     *  enclave mode or for the no-core ENCLS context. */
    std::uint64_t coreEid(hw::CoreId core) const
    {
        if (core >= cores_.size()) return 0;
        const auto& frames = cores_[core].frames();
        return frames.empty() ? 0 : frames.back().eid;
    }

    static Status leafStatus(const Status& s) { return s; }
    template <typename T>
    static Status leafStatus(const Result<T>& r) { return r.status(); }

    /** Brackets a leaf body in LeafEnter/LeafExit events. The exit event
     *  is stamped with the *post*-leaf enclave id, so transition events
     *  carry the context they switched to. With no sinks attached only
     *  the exit counter is bumped — the eid lookups are skipped too. */
    template <typename Body>
    auto tracedLeaf(trace::Leaf leaf, hw::CoreId core, std::uint64_t arg0,
                    Body&& body)
    {
        if (!bus_.active()) {
            auto result = body();
            bus_.countLeafExit(leaf, leafStatus(result));
            return result;
        }
        bus_.leafEnter(leaf, core, coreEid(core), arg0);
        auto result = body();
        bus_.leafExit(leaf, core, coreEid(core), leafStatus(result), arg0);
        return result;
    }

    /** TlbHit emission for the translate fast path: the eid lookup only
     *  happens when a sink actually wants the event. */
    void publishTlbHit(hw::CoreId coreId, hw::Vaddr va)
    {
        if (bus_.active()) {
            bus_.publishLight(trace::EventKind::TlbHit, coreId,
                              coreEid(coreId), va);
        } else {
            bus_.countLight(trace::EventKind::TlbHit);
        }
    }

    Result<hw::Paddr> validateAndFill(hw::CoreId coreId, hw::Vaddr va,
                                      hw::Access access);

    /**
     * Internal traced-but-unlocked leaf variants, for call sites that
     * already hold `stateMutex_`: IPI shootdown (exclusive) delivers AEX
     * to tracked cores, and the AexStorm fault hook (shared, inside
     * accessRange) injects AEX+ERESUME mid-access. They emit exactly the
     * same LeafEnter/LeafExit brackets as the public leaves, so the
     * serial trace stream is byte-identical to the pre-locking machine.
     */
    Status aexLocked(hw::CoreId core);
    Status eresumeLocked(hw::CoreId core, hw::Paddr tcsPage);

    /** Body of `translate` without the state lock (accessRange holds it). */
    Result<hw::Paddr> translateLocked(hw::CoreId core, hw::Vaddr va,
                                      hw::Access a);

    /** Body of `flushCoreTlb` without the state lock (AEX/EENTER paths). */
    void flushCoreTlbLocked(hw::CoreId core);

    /**
     * Tag-checked TLB probe: forwards to `Tlb::lookup` with the core's
     * current SECS as the tag, accounting any tag reject in stats and
     * charging the tag-compare cost (tagged mode only).
     */
    const hw::TlbEntry* tlbProbe(hw::Core& core, hw::Vaddr va);

    /** Drops `pagePa` translations from every core (EBLOCK/EWB/EREMOVE). */
    void invalidateTlbForPage(hw::Paddr pagePa);

    /** Drops all of a SECS's tagged translations from every core. */
    void invalidateTlbForSecs(hw::Paddr secsPage);

    /** Invalidates the memoized outer closures (NASSO/EREMOVE). */
    void invalidateClosureCache();

    /** Shared implementation of `read`/`write` with the contiguous-range
     *  fast path. */
    Status accessRange(hw::CoreId core, hw::Vaddr va, std::uint8_t* out,
                       const std::uint8_t* in, std::uint64_t len);

    /** Cold half of faultFires: trigger evaluation + event publication. */
    bool faultFiresSlow(fault::FaultSite site, hw::CoreId core);

    crypto::Sha256Digest reportKeyFor(const Measurement& targetMr) const;

    Config config_;
    hw::PhysicalMemory mem_;
    hw::SimClock clock_;
    hw::CostModel costs_;
    hw::LastLevelCache llc_;
    Epcm epcm_;
    std::vector<hw::Core> cores_;
    std::map<hw::Paddr, Secs> secsTable_;
    std::map<hw::Paddr, Tcs> tcsTable_;
    std::map<std::uint64_t, std::uint64_t> versionArray_;
    std::uint64_t nextVersionSlot_ = 1;
    EnclaveId nextEid_ = 1;
    Bytes rootKey_;
    std::unique_ptr<crypto::AesGcm> pagingGcm_;
    Rng rng_;
    /** Event publication point; owns the Stats counters (trace/bus.h).
     *  Mutable for the same reason `stats_` was: const paths (closure
     *  memoization, oracle introspection) still publish. */
    mutable trace::TraceBus bus_;
    /** Memoized `outerClosure` results; cleared on NASSO/EREMOVE.
     *  std::map for node stability: returned references survive
     *  insertion of other keys. */
    mutable std::map<hw::Paddr, std::vector<hw::Paddr>> closureCache_;
    /** Armed fault injector (src/fault), or null. Never owned. */
    fault::FaultInjector* faultInjector_ = nullptr;

    /**
     * Machine-wide reader/writer lock for real-thread mode (§13 of
     * DESIGN.md). Leaves that mutate *structural* state — lifecycle
     * (ECREATE..NASSO), paging (EBLOCK/ETRACK/EWB/ELDU), IPI shootdown,
     * OS-initiated TLB flushes — take it exclusive. Transitions, data
     * accesses and attestation take it shared: they only touch their own
     * core's state (TLB, frame stack) plus structures with their own
     * finer locks (LLC, page tables, EPCM stripes, clock, trace bus).
     *
     * Exclusive acquisition doubles as the epoch/IPI quiesce point: a
     * writer observing the lock means no simulated core is mid-access,
     * so sweeping another core's TLB (invalidateTlbFor*) is race-free
     * without per-TLB locks — TLBs stay lock-free to their owning
     * thread, the concurrency analogue of real IPI shootdown.
     *
     * In single-thread mode the lock is always uncontended and the
     * sequence of machine operations — hence the trace — is unchanged.
     */
    mutable std::shared_mutex stateMutex_;
    /** Guards the ETRACK tracking sets (Secs::trackingSet/trackingActive):
     *  written by shared-mode AEX paths (flushCoreTlbLocked), so the
     *  rwlock alone does not order concurrent erasures. Leaf-level: never
     *  held while acquiring any other lock. */
    mutable std::mutex trackingMutex_;
    /** Guards closureCache_: `outerClosure` memoizes under shared mode.
     *  Leaf-level, like trackingMutex_. */
    mutable std::mutex closureMutex_;
};

}  // namespace nesgx::sgx
