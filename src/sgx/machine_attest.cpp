/**
 * Attestation leaves: EREPORT, NEREPORT, EGETKEY (paper §IV-B, §IV-E).
 *
 * NEREPORT extends EREPORT with the association relations: a challenger
 * attesting an outer enclave learns the measurements of every inner
 * enclave sharing it, and an inner enclave's report names its outer.
 */
#include "sgx/machine.h"

#include <algorithm>

#include "crypto/hmac.h"
#include "crypto/kdf.h"

namespace nesgx::sgx {

Bytes
Report::macBody() const
{
    Bytes out;
    append(out, ByteView(mrenclave.data(), 32));
    append(out, ByteView(mrsigner.data(), 32));
    std::uint8_t attr[8];
    storeLe64(attr, attributes);
    append(out, ByteView(attr, 8));
    append(out, ByteView(reportData.data(), reportData.size()));
    return out;
}

Bytes
NestedReport::macBody() const
{
    Bytes out = base.macBody();
    std::uint8_t depth[4];
    storeLe32(depth, chainDepth);
    append(out, ByteView(depth, 4));
    append(out, ByteView(outerMeasurement.data(), 32));
    std::uint8_t count[4];
    storeLe32(count, std::uint32_t(outerMeasurements.size()));
    append(out, ByteView(count, 4));
    for (const auto& m : outerMeasurements) {
        append(out, ByteView(m.data(), 32));
    }
    storeLe32(count, std::uint32_t(innerMeasurements.size()));
    append(out, ByteView(count, 4));
    for (const auto& m : innerMeasurements) {
        append(out, ByteView(m.data(), 32));
    }
    return out;
}

crypto::Sha256Digest
Machine::reportKeyFor(const Measurement& targetMr) const
{
    // The report key derives from the device root and the *target*
    // enclave identity, so only the target can re-derive it via EGETKEY.
    return crypto::deriveKey256(rootKey_, "report-key",
                                ByteView(targetMr.data(), 32));
}

Result<Report>
Machine::ereport(hw::CoreId coreId, const TargetInfo& target,
                 const ReportData& data)
{
    std::shared_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Ereport, coreId, 0,
                      [&] { return ereportImpl(coreId, target, data); });
}

Result<Report>
Machine::ereportImpl(hw::CoreId coreId, const TargetInfo& target,
                     const ReportData& data)
{
    charge(costs_.ereport);
    hw::Core& core = cores_[coreId];
    if (!core.inEnclaveMode()) return Err::GeneralProtection;
    const Secs* secs = secsAt(core.currentSecs());
    if (!secs) return Err::GeneralProtection;

    Report report;
    report.mrenclave = secs->mrenclave;
    report.mrsigner = secs->mrsigner;
    report.attributes = secs->attributes;
    report.reportData = data;

    crypto::Sha256Digest key = reportKeyFor(target.mrenclave);
    report.mac = crypto::hmacSha256(ByteView(key.data(), key.size()),
                                    report.macBody());
    return report;
}

Result<NestedReport>
Machine::nereport(hw::CoreId coreId, const TargetInfo& target,
                  const ReportData& data)
{
    std::shared_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Nereport, coreId, 0,
                      [&] { return nereportImpl(coreId, target, data); });
}

Result<NestedReport>
Machine::nereportImpl(hw::CoreId coreId, const TargetInfo& target,
                      const ReportData& data)
{
    charge(costs_.ereport);
    hw::Core& core = cores_[coreId];
    if (!core.inEnclaveMode()) return Err::GeneralProtection;
    const Secs* secs = secsAt(core.currentSecs());
    if (!secs) return Err::GeneralProtection;

    NestedReport report;
    report.base.mrenclave = secs->mrenclave;
    report.base.mrsigner = secs->mrsigner;
    report.base.attributes = secs->attributes;
    report.base.reportData = data;

    // Association relations: the paper's NEREPORT "includes the
    // association relationship of the target enclaves" (§IV-B) — the
    // outer's measurement plus the measurements of every inner enclave
    // sharing this enclave (§IV-E remote attestation).
    bool primarySet = false;
    for (hw::Paddr outerPa : secs->outerEids) {
        if (const Secs* outer = secsAt(outerPa)) {
            if (!primarySet) {
                primarySet = true;
                report.outerMeasurement = outer->mrenclave;  // primary
            }
            report.outerMeasurements.push_back(outer->mrenclave);
        }
    }
    // chainDepth counts live hops along the primary-outer chain, so a
    // depth-3 tenant's report is distinguishable from a depth-2 one.
    // Bounded by the live-SECS count: a corrupted cyclic association
    // graph terminates instead of hanging the leaf.
    const std::size_t maxHops = secsTable_.size();
    const Secs* hop = secs;
    while (hop && report.chainDepth < maxHops) {
        const Secs* outer = nullptr;
        for (hw::Paddr outerPa : hop->outerEids) {
            if ((outer = secsAt(outerPa)) != nullptr) break;
        }
        if (!outer) break;
        ++report.chainDepth;
        hop = outer;
    }
    for (hw::Paddr innerPa : secs->innerEids) {
        if (const Secs* inner = secsAt(innerPa)) {
            report.innerMeasurements.push_back(inner->mrenclave);
        }
    }

    crypto::Sha256Digest key = reportKeyFor(target.mrenclave);
    report.mac = crypto::hmacSha256(ByteView(key.data(), key.size()),
                                    report.macBody());
    return report;
}

Result<crypto::Sha256Digest>
Machine::egetkeyReport(hw::CoreId coreId)
{
    std::shared_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Egetkey, coreId, 0,
                      [&] { return egetkeyReportImpl(coreId); });
}

Result<crypto::Sha256Digest>
Machine::egetkeyReportImpl(hw::CoreId coreId)
{
    charge(costs_.egetkey);
    hw::Core& core = cores_[coreId];
    if (!core.inEnclaveMode()) return Err::GeneralProtection;
    const Secs* secs = secsAt(core.currentSecs());
    if (!secs) return Err::GeneralProtection;
    return reportKeyFor(secs->mrenclave);
}

Result<crypto::Sha256Digest>
Machine::egetkeySeal(hw::CoreId coreId)
{
    std::shared_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Egetkey, coreId, 0,
                      [&] { return egetkeySealImpl(coreId); });
}

Result<crypto::Sha256Digest>
Machine::egetkeySealImpl(hw::CoreId coreId)
{
    charge(costs_.egetkey);
    hw::Core& core = cores_[coreId];
    if (!core.inEnclaveMode()) return Err::GeneralProtection;
    const Secs* secs = secsAt(core.currentSecs());
    if (!secs) return Err::GeneralProtection;
    return crypto::deriveKey256(rootKey_, "seal-key",
                                ByteView(secs->mrsigner.data(), 32));
}

Result<crypto::Sha256Digest>
Machine::egetkeySealIdentity(hw::CoreId coreId)
{
    std::shared_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Egetkey, coreId, 0,
                      [&] { return egetkeySealIdentityImpl(coreId); });
}

Result<crypto::Sha256Digest>
Machine::egetkeySealIdentityImpl(hw::CoreId coreId)
{
    charge(costs_.egetkey);
    hw::Core& core = cores_[coreId];
    if (!core.inEnclaveMode()) return Err::GeneralProtection;
    const Secs* secs = secsAt(core.currentSecs());
    if (!secs) return Err::GeneralProtection;
    return identitySealingKey(secs->mrenclave, secs->mrsigner);
}

crypto::Sha256Digest
Machine::identitySealingKey(const Measurement& mrenclave,
                            const Measurement& mrsigner) const
{
    std::array<std::uint8_t, 64> context{};
    std::copy(mrenclave.begin(), mrenclave.end(), context.begin());
    std::copy(mrsigner.begin(), mrsigner.end(), context.begin() + 32);
    return crypto::deriveKey256(rootKey_, "seal-key-identity",
                                ByteView(context.data(), context.size()));
}

bool
Machine::verifyReport(const Report& report, const Measurement& targetMr) const
{
    crypto::Sha256Digest key = reportKeyFor(targetMr);
    crypto::Sha256Digest mac = crypto::hmacSha256(
        ByteView(key.data(), key.size()), report.macBody());
    return constantTimeEqual(ByteView(mac.data(), 32),
                             ByteView(report.mac.data(), 32));
}

bool
Machine::verifyNestedReport(const NestedReport& report,
                            const Measurement& targetMr) const
{
    crypto::Sha256Digest key = reportKeyFor(targetMr);
    crypto::Sha256Digest mac = crypto::hmacSha256(
        ByteView(key.data(), key.size()), report.macBody());
    return constantTimeEqual(ByteView(mac.data(), 32),
                             ByteView(report.mac.data(), 32));
}

}  // namespace nesgx::sgx
