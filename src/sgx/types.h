/**
 * Shared SGX-model types: enclave ids, page types, permissions.
 */
#pragma once

#include <cstdint>

#include "crypto/sha256.h"
#include "hw/types.h"

namespace nesgx::sgx {

/** Unique (never reused) enclave id assigned at ECREATE. */
using EnclaveId = std::uint64_t;

/** Enclave attribute bits. */
constexpr std::uint64_t kAttrDebug = 1ull << 0;
/**
 * Opt-in to the §VIII "multiple outer enclaves" extension: an inner
 * enclave with this attribute may associate with more than one outer
 * (the general lattice model). Without it, the paper's default
 * single-outer-per-inner rule is enforced at NASSO.
 */
constexpr std::uint64_t kAttrMultiOuter = 1ull << 1;

using Measurement = crypto::Sha256Digest;

/** EPC page types tracked by the EPCM. */
enum class PageType : std::uint8_t {
    Secs,  ///< enclave control structure
    Tcs,   ///< thread control structure
    Reg,   ///< regular code/data page
};

/** EPCM access permissions for a regular page. */
struct PagePerms {
    bool r = true;
    bool w = true;
    bool x = false;

    static PagePerms rw() { return {true, true, false}; }
    static PagePerms rx() { return {true, false, true}; }
    static PagePerms rwx() { return {true, true, true}; }

    bool allows(hw::Access a) const
    {
        switch (a) {
          case hw::Access::Read: return r;
          case hw::Access::Write: return w;
          case hw::Access::Execute: return x;
        }
        return false;
    }

    std::uint8_t bits() const
    {
        return std::uint8_t((r ? 1 : 0) | (w ? 2 : 0) | (x ? 4 : 0));
    }
};

}  // namespace nesgx::sgx
