/**
 * ENCLU transition leaves: EENTER, EEXIT, NEENTER, NEEXIT, AEX, ERESUME
 * (paper §IV-B, Fig. 5 state transitions).
 *
 * Each public leaf is a `tracedLeaf` wrapper around the *Impl body: the
 * bus brackets the body in LeafEnter/LeafExit events, and the successful
 * LeafExit is what feeds the per-transition counters (trace/stats.h) —
 * the bodies themselves no longer touch counters directly.
 */
#include "fault/injector.h"
#include "sgx/chain.h"
#include "sgx/machine.h"

namespace nesgx::sgx {

namespace {

inline trace::TraceEvent
coreEvent(trace::EventKind kind, hw::CoreId core, std::uint64_t eid,
          std::uint64_t arg0 = 0)
{
    trace::TraceEvent event;
    event.kind = kind;
    event.core = core;
    event.eid = eid;
    event.arg0 = arg0;
    return event;
}

}  // namespace

Status
Machine::eenter(hw::CoreId coreId, hw::Paddr tcsPage)
{
    // Transitions run in shared mode: they mutate only their own core's
    // frame stack/TLB and the target TCS busy flag (whose ownership is
    // serialized by the SDK/serving layers above), never the structural
    // tables — those writers take the lock exclusive.
    std::shared_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Eenter, coreId, tcsPage,
                      [&] { return eenterImpl(coreId, tcsPage); });
}

Status
Machine::eenterImpl(hw::CoreId coreId, hw::Paddr tcsPage)
{
    if (faultFires(fault::FaultSite::EenterFail, coreId)) {
        return Err::GeneralProtection;
    }
    hw::Core& core = cores_[coreId];
    if (core.inEnclaveMode()) return Err::GeneralProtection;
    if (!mem_.inPrm(tcsPage)) return Err::GeneralProtection;

    const EpcmEntry entry = [&] {
        auto stripe = epcm_.lockFrame(mem_.epcPageIndex(tcsPage));
        return epcm_.entry(mem_.epcPageIndex(tcsPage));
    }();
    if (!entry.valid || entry.type != PageType::Tcs || entry.blocked) {
        return Err::GeneralProtection;
    }
    Secs* secs = secsAt(entry.ownerSecs);
    if (!secs || !secs->initialized) return Err::GeneralProtection;
    Tcs* tcs = tcsAt(tcsPage);
    if (!tcs || tcs->busy) return Err::GeneralProtection;

    charge(costs_.eenterCycles(config_.taggedTlb));
    // The TLB must never *serve* translations validated in a different
    // protection context (invariant 1, paper §VII-A). The flush model
    // enforces that by invalidating everything; the tagged model keeps
    // the entries and relies on the tag-checked lookup instead.
    if (config_.taggedTlb) {
        bus_.publishLight(trace::EventKind::TlbFlushAvoided, coreId,
                          secs->eid);
    } else {
        flushCoreTlbLocked(coreId);
    }
    tcs->busy = true;
    core.pushFrame(entry.ownerSecs, tcsPage, secs->eid);
    return Status::ok();
}

Status
Machine::eexit(hw::CoreId coreId)
{
    std::shared_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Eexit, coreId, 0,
                      [&] { return eexitImpl(coreId); });
}

Status
Machine::eexitImpl(hw::CoreId coreId)
{
    hw::Core& core = cores_[coreId];
    if (!core.inEnclaveMode()) return Err::GeneralProtection;
    // Model restriction: synchronous EEXIT only from depth 1; nested
    // frames return through NEEXIT (see machine.h header comment).
    if (core.depth() != 1) return Err::GeneralProtection;

    charge(costs_.eexitCycles(config_.taggedTlb));
    hw::EnclaveFrame frame = core.popFrame();
    if (Tcs* tcs = tcsAt(frame.tcs)) tcs->busy = false;
    if (config_.taggedTlb) {
        bus_.publishLight(trace::EventKind::TlbFlushAvoided, coreId,
                          frame.eid);
    } else {
        flushCoreTlbLocked(coreId);
    }
    return Status::ok();
}

Status
Machine::neenter(hw::CoreId coreId, hw::Paddr tcsPage)
{
    std::shared_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Neenter, coreId, tcsPage,
                      [&] { return neenterImpl(coreId, tcsPage); });
}

Status
Machine::neenterImpl(hw::CoreId coreId, hw::Paddr tcsPage)
{
    if (faultFires(fault::FaultSite::NeenterFail, coreId)) {
        return Err::GeneralProtection;
    }
    hw::Core& core = cores_[coreId];
    // The core must already execute in enclave mode (the outer enclave).
    if (!core.inEnclaveMode()) return Err::GeneralProtection;
    if (!mem_.inPrm(tcsPage)) return Err::GeneralProtection;

    const EpcmEntry entry = [&] {
        auto stripe = epcm_.lockFrame(mem_.epcPageIndex(tcsPage));
        return epcm_.entry(mem_.epcPageIndex(tcsPage));
    }();
    if (!entry.valid || entry.type != PageType::Tcs || entry.blocked) {
        return Err::GeneralProtection;
    }
    // The destination TCS must belong to an inner enclave of the
    // currently executing enclave (paper §IV-B; under kAttrMultiOuter
    // any of the target's outers qualifies).
    Secs* target = secsAt(entry.ownerSecs);
    if (!target || !target->initialized) return Err::GeneralProtection;
#ifdef NESGX_BUG_CHAIN_SKIP
    // Mutation: skip the adjacency check for hops past the first NEENTER
    // — a depth>=2 core may enter *any* initialized enclave, poisoning
    // the nest that AEX later saves. Caught by the SavedChainValidity
    // oracle rule (the live-frame FrameValidity rule never sees it:
    // ERESUME refuses the poisoned nest, so it only exists saved).
    const bool adjacent = core.depth() >= 2 ||
                          chainAdjacent(*target, core.currentSecs());
#else
    const bool adjacent = chainAdjacent(*target, core.currentSecs());
#endif
    if (!adjacent) return Err::GeneralProtection;
    Tcs* tcs = tcsAt(tcsPage);
    if (!tcs || tcs->busy) return Err::GeneralProtection;

    charge(costs_.neenterCycles(config_.taggedTlb));
    if (config_.taggedTlb) {
        bus_.publishLight(trace::EventKind::TlbFlushAvoided, coreId,
                          target->eid);
    } else {
        flushCoreTlbLocked(coreId);
    }
    tcs->busy = true;
    core.pushFrame(entry.ownerSecs, tcsPage, target->eid);
    return Status::ok();
}

Status
Machine::neexit(hw::CoreId coreId)
{
    std::shared_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Neexit, coreId, 0,
                      [&] { return neexitImpl(coreId); });
}

Status
Machine::neexitImpl(hw::CoreId coreId)
{
    hw::Core& core = cores_[coreId];
    // Only meaningful from an inner frame entered via NEENTER: there must
    // be an outer frame below, and it must be this inner's outer enclave.
    if (core.depth() < 2) return Err::GeneralProtection;
    const Secs* inner = secsAt(core.currentSecs());
    const auto& frames = core.frames();
    if (!inner || !chainAdjacent(*inner, frames[frames.size() - 2].secs)) {
        return Err::GeneralProtection;
    }

    // NEEXIT scrubs all architectural registers, and keeps the inner
    // context's translations out of the outer's reach — by flushing the
    // TLB (§IV-B), or by the tag check when the TLB is context-tagged.
    charge(costs_.neexitCycles(config_.taggedTlb));
    hw::EnclaveFrame frame = core.popFrame();
    if (Tcs* tcs = tcsAt(frame.tcs)) tcs->busy = false;
    if (config_.taggedTlb) {
        bus_.publishLight(trace::EventKind::TlbFlushAvoided, coreId,
                          frame.eid);
    } else {
        flushCoreTlbLocked(coreId);
    }
    return Status::ok();
}

Status
Machine::aex(hw::CoreId coreId)
{
    std::shared_lock<std::shared_mutex> g(stateMutex_);
    return aexLocked(coreId);
}

Status
Machine::aexLocked(hw::CoreId coreId)
{
    return tracedLeaf(trace::Leaf::Aex, coreId, 0,
                      [&] { return aexImpl(coreId); });
}

Status
Machine::aexImpl(hw::CoreId coreId)
{
    hw::Core& core = cores_[coreId];
    if (!core.inEnclaveMode()) return Err::GeneralProtection;

    charge(costs_.aex);
    // AEX always does the real flush, even with a tagged TLB: the OS
    // takes over the core, and ETRACK's tracking-set drain depends on
    // the flush actually happening (paper §IV-E).
    // The whole nest is saved into the bottom-most TCS so ERESUME can
    // restore execution exactly where the exception hit.
    hw::Paddr bottomTcs = core.frames().front().tcs;
    const std::uint64_t interruptedEid = core.frames().back().eid;
    Tcs* tcs = tcsAt(bottomTcs);
    if (!tcs) {
        // Fail closed: with no bottom TCS there is nowhere to save the
        // nest, and just dropping the frames would leave every TCS in it
        // busy with no core or saved frame accounting for it. Release the
        // busy flags, unwind, and fault.
        for (const auto& frame : core.frames()) {
            if (Tcs* t = tcsAt(frame.tcs)) t->busy = false;
        }
        core.clearFrames();
        flushCoreTlbLocked(coreId);
        trace::TraceEvent event =
            coreEvent(trace::EventKind::AexTaken, coreId, interruptedEid);
        event.code = std::uint16_t(Err::GeneralProtection);
        bus_.publish(event);
        return Err::GeneralProtection;
    }
    tcs->savedFrames = core.frames();
    tcs->hasSavedFrames = true;
    core.clearFrames();
    flushCoreTlbLocked(coreId);
    bus_.publish(coreEvent(trace::EventKind::AexTaken, coreId, interruptedEid,
                           bottomTcs));
    return Status::ok();
}

Status
Machine::eresume(hw::CoreId coreId, hw::Paddr tcsPage)
{
    std::shared_lock<std::shared_mutex> g(stateMutex_);
    return eresumeLocked(coreId, tcsPage);
}

Status
Machine::eresumeLocked(hw::CoreId coreId, hw::Paddr tcsPage)
{
    return tracedLeaf(trace::Leaf::Eresume, coreId, tcsPage,
                      [&] { return eresumeImpl(coreId, tcsPage); });
}

Status
Machine::eresumeImpl(hw::CoreId coreId, hw::Paddr tcsPage)
{
    hw::Core& core = cores_[coreId];
    if (core.inEnclaveMode()) return Err::GeneralProtection;
    // ERESUME re-runs the EENTER-grade validation: saved frames are not a
    // capability. The TCS must still be a live, unblocked TCS page, and
    // every enclave in the saved nest must still exist in the state the
    // AEX left it in — otherwise stale frames could re-enter an enclave
    // that was EREMOVE'd (and whose EPC frames were reused) since.
    if (!mem_.inPrm(tcsPage)) return Err::GeneralProtection;
#ifndef NESGX_BUG_ERESUME_UNCHECKED
    const EpcmEntry entry = [&] {
        auto stripe = epcm_.lockFrame(mem_.epcPageIndex(tcsPage));
        return epcm_.entry(mem_.epcPageIndex(tcsPage));
    }();
    if (!entry.valid || entry.type != PageType::Tcs || entry.blocked) {
        return Err::GeneralProtection;
    }
#endif
    Tcs* tcs = tcsAt(tcsPage);
    if (!tcs || !tcs->hasSavedFrames) return Err::GeneralProtection;
    const auto& saved = tcs->savedFrames;
#ifndef NESGX_BUG_ERESUME_UNCHECKED
    // The whole saved nest must still be a valid ancestor chain of live,
    // id-matched enclaves (the id check distinguishes the saved enclave
    // from a later one recreated at the same SECS frame — ids are never
    // reused), with the same adjacency NEENTER checked hop by hop. The
    // shared walk keeps the microcode and the oracle's SavedChainValidity
    // rule agreeing on what a resumable nest is.
    if (!validateFrameChain(saved, [&](hw::Paddr pa) { return secsAt(pa); })
             .ok()) {
        return Err::GeneralProtection;
    }
    for (std::size_t i = 0; i < saved.size(); ++i) {
        const EpcmEntry fe = [&] {
            auto stripe = epcm_.lockFrame(mem_.epcPageIndex(saved[i].tcs));
            return epcm_.entry(mem_.epcPageIndex(saved[i].tcs));
        }();
        if (!fe.valid || fe.type != PageType::Tcs ||
            fe.ownerSecs != saved[i].secs || !tcsAt(saved[i].tcs)) {
            return Err::GeneralProtection;
        }
    }
#else
    (void)saved;
#endif

    charge(costs_.eenterCycles(config_.taggedTlb));
    if (config_.taggedTlb) {
        bus_.publishLight(trace::EventKind::TlbFlushAvoided, coreId,
                          saved.empty() ? 0 : saved.back().eid);
    } else {
        flushCoreTlbLocked(coreId);
    }
    for (const auto& frame : tcs->savedFrames) {
        core.pushFrame(frame.secs, frame.tcs, frame.eid);
    }
    tcs->savedFrames.clear();
#ifndef NESGX_BUG_ERESUME_PAIRING
    tcs->hasSavedFrames = false;
#endif
    return Status::ok();
}

void
Machine::ringPoll(hw::CoreId coreId, std::uint64_t ringId)
{
    charge(costs_.ringPoll);
    if (bus_.active()) {
        bus_.publishLight(trace::EventKind::SwitchlessPoll, coreId,
                          coreEid(coreId), ringId);
    } else {
        bus_.countLight(trace::EventKind::SwitchlessPoll, ringId);
    }
}

void
Machine::ringDoorbell(hw::CoreId coreId, std::uint64_t ringId)
{
    // A doorbell is a plain store to the shared word plus the consumer's
    // wake-up: pure cycle cost, no event — the paired SwitchlessPost
    // already records the post itself.
    (void)coreId;
    (void)ringId;
    charge(costs_.ringDoorbell);
}

}  // namespace nesgx::sgx
