/**
 * ENCLU transition leaves: EENTER, EEXIT, NEENTER, NEEXIT, AEX, ERESUME
 * (paper §IV-B, Fig. 5 state transitions).
 */
#include "sgx/machine.h"

namespace nesgx::sgx {

Status
Machine::eenter(hw::CoreId coreId, hw::Paddr tcsPage)
{
    hw::Core& core = cores_[coreId];
    if (core.inEnclaveMode()) return Err::GeneralProtection;
    if (!mem_.inPrm(tcsPage)) return Err::GeneralProtection;

    const EpcmEntry& entry = epcm_.entry(mem_.epcPageIndex(tcsPage));
    if (!entry.valid || entry.type != PageType::Tcs || entry.blocked) {
        return Err::GeneralProtection;
    }
    Secs* secs = secsAt(entry.ownerSecs);
    if (!secs || !secs->initialized) return Err::GeneralProtection;
    Tcs* tcs = tcsAt(tcsPage);
    if (!tcs || tcs->busy) return Err::GeneralProtection;

    charge(costs_.eenterCycles(config_.taggedTlb));
    // The TLB must never *serve* translations validated in a different
    // protection context (invariant 1, paper §VII-A). The flush model
    // enforces that by invalidating everything; the tagged model keeps
    // the entries and relies on the tag-checked lookup instead.
    if (config_.taggedTlb) {
        ++stats_.flushesAvoided;
    } else {
        flushCoreTlb(coreId);
    }
    tcs->busy = true;
    core.pushFrame(entry.ownerSecs, tcsPage);
    ++stats_.eenterCount;
    return Status::ok();
}

Status
Machine::eexit(hw::CoreId coreId)
{
    hw::Core& core = cores_[coreId];
    if (!core.inEnclaveMode()) return Err::GeneralProtection;
    // Model restriction: synchronous EEXIT only from depth 1; nested
    // frames return through NEEXIT (see machine.h header comment).
    if (core.depth() != 1) return Err::GeneralProtection;

    charge(costs_.eexitCycles(config_.taggedTlb));
    hw::EnclaveFrame frame = core.popFrame();
    if (Tcs* tcs = tcsAt(frame.tcs)) tcs->busy = false;
    if (config_.taggedTlb) {
        ++stats_.flushesAvoided;
    } else {
        flushCoreTlb(coreId);
    }
    ++stats_.eexitCount;
    return Status::ok();
}

Status
Machine::neenter(hw::CoreId coreId, hw::Paddr tcsPage)
{
    hw::Core& core = cores_[coreId];
    // The core must already execute in enclave mode (the outer enclave).
    if (!core.inEnclaveMode()) return Err::GeneralProtection;
    if (!mem_.inPrm(tcsPage)) return Err::GeneralProtection;

    const EpcmEntry& entry = epcm_.entry(mem_.epcPageIndex(tcsPage));
    if (!entry.valid || entry.type != PageType::Tcs || entry.blocked) {
        return Err::GeneralProtection;
    }
    // The destination TCS must belong to an inner enclave of the
    // currently executing enclave (paper §IV-B; under kAttrMultiOuter
    // any of the target's outers qualifies).
    Secs* target = secsAt(entry.ownerSecs);
    if (!target || !target->initialized ||
        !target->hasOuter(core.currentSecs())) {
        return Err::GeneralProtection;
    }
    Tcs* tcs = tcsAt(tcsPage);
    if (!tcs || tcs->busy) return Err::GeneralProtection;

    charge(costs_.neenterCycles(config_.taggedTlb));
    if (config_.taggedTlb) {
        ++stats_.flushesAvoided;
    } else {
        flushCoreTlb(coreId);
    }
    tcs->busy = true;
    core.pushFrame(entry.ownerSecs, tcsPage);
    ++stats_.neenterCount;
    return Status::ok();
}

Status
Machine::neexit(hw::CoreId coreId)
{
    hw::Core& core = cores_[coreId];
    // Only meaningful from an inner frame entered via NEENTER: there must
    // be an outer frame below, and it must be this inner's outer enclave.
    if (core.depth() < 2) return Err::GeneralProtection;
    const Secs* inner = secsAt(core.currentSecs());
    const auto& frames = core.frames();
    if (!inner || !inner->hasOuter(frames[frames.size() - 2].secs)) {
        return Err::GeneralProtection;
    }

    // NEEXIT scrubs all architectural registers, and keeps the inner
    // context's translations out of the outer's reach — by flushing the
    // TLB (§IV-B), or by the tag check when the TLB is context-tagged.
    charge(costs_.neexitCycles(config_.taggedTlb));
    hw::EnclaveFrame frame = core.popFrame();
    if (Tcs* tcs = tcsAt(frame.tcs)) tcs->busy = false;
    if (config_.taggedTlb) {
        ++stats_.flushesAvoided;
    } else {
        flushCoreTlb(coreId);
    }
    ++stats_.neexitCount;
    return Status::ok();
}

Status
Machine::aex(hw::CoreId coreId)
{
    hw::Core& core = cores_[coreId];
    if (!core.inEnclaveMode()) return Err::GeneralProtection;

    charge(costs_.aex);
    // AEX always does the real flush, even with a tagged TLB: the OS
    // takes over the core, and ETRACK's tracking-set drain depends on
    // the flush actually happening (paper §IV-E).
    // The whole nest is saved into the bottom-most TCS so ERESUME can
    // restore execution exactly where the exception hit.
    hw::Paddr bottomTcs = core.frames().front().tcs;
    Tcs* tcs = tcsAt(bottomTcs);
    if (tcs) {
        tcs->savedFrames = core.frames();
        tcs->hasSavedFrames = true;
    }
    core.clearFrames();
    flushCoreTlb(coreId);
    ++stats_.aexCount;
    return Status::ok();
}

Status
Machine::eresume(hw::CoreId coreId, hw::Paddr tcsPage)
{
    hw::Core& core = cores_[coreId];
    if (core.inEnclaveMode()) return Err::GeneralProtection;
    Tcs* tcs = tcsAt(tcsPage);
    if (!tcs || !tcs->hasSavedFrames) return Err::GeneralProtection;

    charge(costs_.eenterCycles(config_.taggedTlb));
    if (config_.taggedTlb) {
        ++stats_.flushesAvoided;
    } else {
        flushCoreTlb(coreId);
    }
    for (const auto& frame : tcs->savedFrames) {
        core.pushFrame(frame.secs, frame.tcs);
    }
    tcs->savedFrames.clear();
    tcs->hasSavedFrames = false;
    return Status::ok();
}

}  // namespace nesgx::sgx
