/**
 * MRENCLAVE accumulation.
 *
 * ECREATE, EADD and EEXTEND fold records into an incremental SHA-256,
 * binding the virtual layout, page attributes and page contents into the
 * enclave identity, in the same spirit (and chunking) as real SGX.
 */
#pragma once

#include "crypto/sha256.h"
#include "hw/types.h"
#include "sgx/types.h"

namespace nesgx::sgx {

/** Size of one EEXTEND-measured chunk, as in SGX. */
constexpr std::uint64_t kMeasureChunk = 256;

class MeasurementLog {
  public:
    /** Folds the ECREATE record (enclave size, SSA config). */
    void recordCreate(std::uint64_t enclaveSize);

    /** Folds an EADD record (page offset within ELRANGE, type, perms). */
    void recordAdd(std::uint64_t pageOffset, PageType type, PagePerms perms);

    /** Folds one EEXTEND record over a 256-byte chunk. */
    void recordExtend(std::uint64_t chunkOffset, ByteView chunk);

    /** Finalizes into the MRENCLAVE value. */
    Measurement finalize();

  private:
    crypto::Sha256 ctx_;
};

}  // namespace nesgx::sgx
