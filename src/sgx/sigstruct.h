/**
 * SIGSTRUCT: the author-signed description of an enclave.
 *
 * Extended per the paper (§IV-C): a signed enclave file additionally
 * carries the *expected measurements of its peer* — an inner enclave file
 * names its expected outer enclave, and an outer enclave file lists the
 * inner enclaves allowed to associate with it. NASSO validates against
 * these author-signed expectations, so the untrusted OS cannot splice an
 * unauthorized enclave into a nest.
 */
#pragma once

#include <optional>
#include <vector>

#include "crypto/rsa.h"
#include "sgx/types.h"
#include "support/bytes.h"
#include "support/status.h"

namespace nesgx::sgx {

/** Expected identity of a peer enclave in a nested association. */
struct PeerExpectation {
    /** Match on the exact enclave measurement (MRENCLAVE). */
    std::optional<Measurement> mrenclave;
    /** Or match on the author identity (MRSIGNER). */
    std::optional<Measurement> mrsigner;

    bool matches(const Measurement& enclave, const Measurement& signer) const;
};

struct SigStruct {
    Measurement enclaveHash{};            ///< expected MRENCLAVE
    std::uint64_t attributes = 0;         ///< mode flags (debug etc.)
    crypto::RsaPublicKey signerKey;       ///< author public key
    Bytes signature;                      ///< PKCS#1 v1.5 over the body

    /** Nested-enclave extension: expected outer, if this is an inner. */
    std::optional<PeerExpectation> expectedOuter;
    /** Nested-enclave extension: inner enclaves allowed to associate. */
    std::vector<PeerExpectation> allowedInners;

    /** Serializes every signed field (everything but the signature). */
    Bytes signedBody() const;

    /** Signs the body with the author key pair. */
    void sign(const crypto::RsaKeyPair& key);

    /** Verifies the signature against the embedded public key. */
    bool verify() const;

    /** MRSIGNER: SHA-256 over the signer's modulus, as in SGX. */
    Measurement signerMeasurement() const
    {
        return signerKey.signerMeasurement();
    }
};

}  // namespace nesgx::sgx
