#include "sgx/sigstruct.h"

namespace nesgx::sgx {

bool
PeerExpectation::matches(const Measurement& enclave,
                         const Measurement& signer) const
{
    if (mrenclave && !constantTimeEqual(ByteView(mrenclave->data(), 32),
                                        ByteView(enclave.data(), 32))) {
        return false;
    }
    if (mrsigner && !constantTimeEqual(ByteView(mrsigner->data(), 32),
                                       ByteView(signer.data(), 32))) {
        return false;
    }
    return mrenclave.has_value() || mrsigner.has_value();
}

namespace {

void
appendExpectation(Bytes& out, const PeerExpectation& pe)
{
    out.push_back(pe.mrenclave ? 1 : 0);
    if (pe.mrenclave) append(out, ByteView(pe.mrenclave->data(), 32));
    out.push_back(pe.mrsigner ? 1 : 0);
    if (pe.mrsigner) append(out, ByteView(pe.mrsigner->data(), 32));
}

}  // namespace

Bytes
SigStruct::signedBody() const
{
    Bytes out;
    append(out, ByteView(enclaveHash.data(), enclaveHash.size()));
    std::uint8_t attr[8];
    storeLe64(attr, attributes);
    append(out, ByteView(attr, 8));

    out.push_back(expectedOuter ? 1 : 0);
    if (expectedOuter) appendExpectation(out, *expectedOuter);

    std::uint8_t count[4];
    storeLe32(count, std::uint32_t(allowedInners.size()));
    append(out, ByteView(count, 4));
    for (const auto& pe : allowedInners) appendExpectation(out, pe);

    // The public key itself is part of the signed identity surface; it is
    // bound via MRSIGNER at EINIT rather than the signature, as in SGX.
    return out;
}

void
SigStruct::sign(const crypto::RsaKeyPair& key)
{
    signerKey = key.pub;
    signature = crypto::rsaSign(key, signedBody());
}

bool
SigStruct::verify() const
{
    return crypto::rsaVerify(signerKey, signedBody(), signature);
}

}  // namespace nesgx::sgx
