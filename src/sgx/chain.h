/**
 * Ancestor-chain validation shared by the transition microcode
 * (machine_transitions.cpp), the orderliness oracle (check/oracle.cpp)
 * and the SDK's chain-routed entry (sdk/runtime.cpp).
 *
 * A nest is valid when every frame's SECS is live and initialized, the
 * enclave id still matches (ids are never reused, so a match proves the
 * SECS frame was not recycled), and each frame's enclave lists the frame
 * below it among its outers — the same adjacency NEENTER enforces one
 * hop at a time (paper §IV-B; under kAttrMultiOuter any listed outer
 * qualifies). Routing every chain walk through this header keeps the
 * microcode, the oracle and the SDK agreeing on what "valid chain"
 * means, so a skipped hop in one layer is caught by another.
 */
#pragma once

#include <cstddef>
#include <cstdint>

#include "sgx/secs.h"

namespace nesgx::sgx {

/** One element of an ancestor chain, root (depth 1) first. */
struct ChainLink {
    hw::Paddr secs = 0;     ///< SECS physical address
    std::uint64_t eid = 0;  ///< expected enclave id (0 = don't check)
};

/** Why a chain failed validation. */
enum class ChainCheck : std::uint8_t {
    Ok,
    DeadSecs,          ///< no live, initialized SECS at the address
    EidMismatch,       ///< SECS frame was recycled for a newer enclave
    BrokenAdjacency,   ///< link i does not list link i-1 as an outer
};

struct ChainVerdict {
    ChainCheck check = ChainCheck::Ok;
    std::size_t index = 0;  ///< first offending link (== n when Ok)

    bool ok() const { return check == ChainCheck::Ok; }
};

inline const char*
chainCheckName(ChainCheck check)
{
    switch (check) {
        case ChainCheck::Ok: return "ok";
        case ChainCheck::DeadSecs: return "dead-secs";
        case ChainCheck::EidMismatch: return "eid-mismatch";
        case ChainCheck::BrokenAdjacency: return "broken-adjacency";
    }
    return "?";
}

/** One NEENTER hop: is `inner` directly nested inside the SECS at
 *  `outerPa`?  Thin named wrapper over Secs::hasOuter so every adjacency
 *  decision reads as a chain check. */
inline bool
chainAdjacent(const Secs& inner, hw::Paddr outerPa)
{
    return inner.hasOuter(outerPa);
}

/**
 * Validates `links[0..n)` as a root-first ancestor chain. `secsAt` maps
 * a SECS physical address to a live `const Secs*` (null when dead) —
 * pass a lambda over Machine::secsAt or the oracle's table view.
 */
template <typename Lookup>
ChainVerdict
validateAncestorChain(const ChainLink* links, std::size_t n, Lookup&& secsAt)
{
    for (std::size_t i = 0; i < n; ++i) {
        const Secs* secs = secsAt(links[i].secs);
        if (!secs || !secs->initialized) {
            return {ChainCheck::DeadSecs, i};
        }
        if (links[i].eid != 0 && secs->eid != links[i].eid) {
            return {ChainCheck::EidMismatch, i};
        }
        if (i > 0 && !chainAdjacent(*secs, links[i - 1].secs)) {
            return {ChainCheck::BrokenAdjacency, i};
        }
    }
    return {ChainCheck::Ok, n};
}

/** Frame-stack overload: validates a core's live frames or a TCS's
 *  saved frames (any container of hw::EnclaveFrame). */
template <typename Frames, typename Lookup>
ChainVerdict
validateFrameChain(const Frames& frames, Lookup&& secsAt)
{
    for (std::size_t i = 0; i < frames.size(); ++i) {
        const Secs* secs = secsAt(frames[i].secs);
        if (!secs || !secs->initialized) {
            return {ChainCheck::DeadSecs, i};
        }
        if (secs->eid != frames[i].eid) {
            return {ChainCheck::EidMismatch, i};
        }
        if (i > 0 && !chainAdjacent(*secs, frames[i - 1].secs)) {
            return {ChainCheck::BrokenAdjacency, i};
        }
    }
    return {ChainCheck::Ok, frames.size()};
}

}  // namespace nesgx::sgx
