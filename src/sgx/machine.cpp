#include "sgx/machine.h"

#include <set>

#include "fault/injector.h"

namespace nesgx::sgx {

bool
Machine::faultFiresSlow(fault::FaultSite site, hw::CoreId core)
{
    if (!faultInjector_->shouldInject(site)) return false;
    bus_.publishLight(trace::EventKind::FaultInjected, core, coreEid(core),
                      std::uint64_t(site), faultInjector_->injected(site));
    return true;
}

Machine::Machine() : Machine(Config{}) {}

Machine::Machine(const Config& config)
    : config_(config),
      mem_(config.dramBytes, config.prmBase, config.prmBytes),
      clock_(),
      costs_(hw::CostModel::forPreset(config.preset)),
      llc_(config.llcBytes),
      epcm_(config.prmBytes >> hw::kPageShift),
      rng_(config.rngSeed)
{
    bus_.setClock(&clock_);
    cores_.reserve(config.coreCount);
    for (std::uint32_t i = 0; i < config.coreCount; ++i) {
        cores_.emplace_back(i, config.tlbCapacity);
        cores_.back().tlb().attachTrace(&bus_, i);
    }
    // Per-device root key: in real SGX this is fused; the model draws it
    // from the seeded RNG so attestation keys are stable per machine.
    rootKey_ = rng_.bytes(32);
    Bytes pagingKey = rng_.bytes(16);
    pagingGcm_ = std::make_unique<crypto::AesGcm>(pagingKey);
}

Secs*
Machine::secsAt(hw::Paddr pa)
{
    auto it = secsTable_.find(pa);
    return it == secsTable_.end() ? nullptr : &it->second;
}

const Secs*
Machine::secsAt(hw::Paddr pa) const
{
    auto it = secsTable_.find(pa);
    return it == secsTable_.end() ? nullptr : &it->second;
}

Tcs*
Machine::tcsAt(hw::Paddr pa)
{
    auto it = tcsTable_.find(pa);
    return it == tcsTable_.end() ? nullptr : &it->second;
}

const Tcs*
Machine::tcsAt(hw::Paddr pa) const
{
    auto it = tcsTable_.find(pa);
    return it == tcsTable_.end() ? nullptr : &it->second;
}

void
Machine::flushCoreTlb(hw::CoreId coreId)
{
    // Public entry (OS reschedule): exclusive — the flushed TLB may
    // belong to a core another thread is running.
    std::unique_lock<std::shared_mutex> g(stateMutex_);
    flushCoreTlbLocked(coreId);
}

void
Machine::flushCoreTlbLocked(hw::CoreId coreId)
{
    // The TLB publishes the TlbFlush event (feeding the tlbFlushes
    // counter) from inside flushAll — hw/tlb.cpp is the emission site.
    cores_[coreId].tlb().flushAll();
    cores_[coreId].clearLastTranslation();
    // A flushed core no longer caches stale translations: drop it from
    // every active ETRACK tracking set (paper §IV-E thread tracking).
    // Transitions reach here in shared mode, so concurrent AEXes race on
    // the sets without the tracking mutex.
    std::lock_guard<std::mutex> t(trackingMutex_);
    for (auto& [pa, secs] : secsTable_) {
        if (secs.trackingActive) secs.trackingSet.erase(coreId);
    }
}

void
Machine::invalidateTlbForPage(hw::Paddr pagePa)
{
    // Selective shootdown by physical frame: required whenever an EPC
    // frame leaves an enclave (EBLOCK/EWB/EREMOVE). Under the tagged
    // TLB, cores that merely *exited* still hold tagged entries, so
    // every core is swept, not just the currently-tracked ones.
    for (auto& core : cores_) {
        core.tlb().invalidatePaddr(pagePa);
    }
}

void
Machine::invalidateTlbForSecs(hw::Paddr secsPage)
{
    for (auto& core : cores_) {
        core.tlb().flushSecs(secsPage);
    }
}

void
Machine::invalidateClosureCache()
{
    std::lock_guard<std::mutex> g(closureMutex_);
    closureCache_.clear();
}

const hw::TlbEntry*
Machine::tlbProbe(hw::Core& core, hw::Vaddr va)
{
    const hw::Tlb& tlb = core.tlb();
    const std::uint64_t rejectsBefore = tlb.tagRejectCount();
    const hw::TlbEntry* entry = tlb.lookup(va, core.currentSecs());
    if (config_.taggedTlb) {
        // The tag compare is only a modelled cost in tagged mode; the
        // flush-on-transition model never sees a mismatched tag (every
        // surviving entry was validated under the current context).
        charge(costs_.tlbTagCompare);
        const std::uint64_t rejects = tlb.tagRejectCount() - rejectsBefore;
        if (rejects) {
            trace::TraceEvent event;
            event.kind = trace::EventKind::TlbTagReject;
            event.core = core.id();
            event.eid = coreEid(core.id());
            event.arg0 = rejects;
            event.arg1 = va;
            bus_.publish(event);
        }
    }
    return entry;
}

void
Machine::chargeDataPath(hw::Paddr pa, std::uint64_t len)
{
    if (len == 0) return;
    hw::Paddr first = hw::lineBase(pa);
    hw::Paddr last = hw::lineBase(pa + len - 1);
    // Callers pass ranges that never straddle the PRM boundary (access
    // proceeds per page segment), so the miss-side cost is uniform and
    // the whole range can go through one locked LLC pass.
    const std::uint64_t lineCount = (last - first) / hw::kCacheLineSize + 1;
    const std::uint64_t llcLines = llc_.touchRange(first, lineCount);
    const std::uint64_t missLines = lineCount - llcLines;
    std::uint64_t meeLines = 0;
    charge(costs_.llcHitLine * llcLines);
    if (mem_.inPrm(first)) {
        // Off-chip EPC traffic goes through the MEE: AES-CTR at
        // cacheline granularity plus integrity-tree work.
        charge(costs_.meeLine * missLines);
        meeLines = missLines;
    } else {
        charge(costs_.dramLine * missLines);
    }
    // One DataPath event per range keeps the stream proportional to
    // accesses, not cachelines; the line tallies ride in the operands.
    bus_.publishLight(trace::EventKind::DataPath, trace::kNoCore, 0, llcLines,
                      meeLines);
}

const std::vector<hw::Paddr>&
Machine::outerClosure(hw::Paddr secsPage) const
{
    bool cacheHit = false;
    return outerClosure(secsPage, &cacheHit);
}

const std::vector<hw::Paddr>&
Machine::outerClosure(hw::Paddr secsPage, bool* cacheHit) const
{
    // Memoization under its own leaf mutex: shared-mode translation
    // misses race on the cache map, while the association graph itself
    // (secsTable_/outerEids) only changes under the exclusive lock. A
    // returned reference stays valid until the next NASSO/EREMOVE drops
    // the cache — both exclusive, so no shared-mode reader is in flight.
    std::lock_guard<std::mutex> lock(closureMutex_);
    auto cached = closureCache_.find(secsPage);
    if (cached != closureCache_.end()) {
        *cacheHit = true;
        bus_.publishLight(trace::EventKind::ClosureCacheHit, trace::kNoCore, 0,
                          secsPage);
        return cached->second;
    }
    *cacheHit = false;
    bus_.publishLight(trace::EventKind::ClosureCacheMiss, trace::kNoCore, 0,
                      secsPage);

    std::vector<hw::Paddr> order;
    std::set<hw::Paddr> visited{secsPage};
    std::vector<hw::Paddr> frontier{secsPage};
    while (!frontier.empty()) {
        hw::Paddr cur = frontier.back();
        frontier.pop_back();
        const Secs* s = secsAt(cur);
        if (!s) continue;
        for (hw::Paddr outer : s->outerEids) {
            if (visited.insert(outer).second) {
                order.push_back(outer);
                frontier.push_back(outer);
            }
        }
    }
    return closureCache_.emplace(secsPage, std::move(order)).first->second;
}

std::vector<hw::CoreId>
Machine::trackedCores(hw::Paddr secsPage) const
{
    // A core may cache translations of enclave E if any frame on its
    // enclave stack is E *or reaches E through the association graph* —
    // an inner-enclave thread touches its outers' pages (paper §IV-E,
    // extended across multi-level/multi-outer nests per §VIII).
    std::vector<hw::CoreId> out;
    for (const auto& core : cores_) {
        bool tracked = false;
        for (const auto& frame : core.frames()) {
            if (frame.secs == secsPage) {
                tracked = true;
                break;
            }
            for (hw::Paddr outer : outerClosure(frame.secs)) {
                if (outer == secsPage) {
                    tracked = true;
                    break;
                }
            }
            if (tracked) break;
        }
        if (tracked) out.push_back(core.id());
    }
    return out;
}

void
Machine::ipiShootdown(hw::Paddr secsPage)
{
    // Exclusive: acquiring the writer side IS the quiesce — once held, no
    // simulated core is mid-transition or mid-access, which is exactly
    // the guarantee a real IPI provides before the initiator proceeds.
    std::unique_lock<std::shared_mutex> g(stateMutex_);
    for (hw::CoreId id : trackedCores(secsPage)) {
        charge(costs_.ipi);
        bus_.publishLight(trace::EventKind::Ipi, id, coreEid(id), secsPage);
        aexLocked(id);
    }
}

}  // namespace nesgx::sgx
