#include "sgx/epcm.h"

namespace nesgx::sgx {

std::uint64_t
Epcm::countOwnedBy(hw::Paddr secsPa) const
{
    std::uint64_t n = 0;
    for (const auto& e : entries_) {
        if (e.valid && e.ownerSecs == secsPa) ++n;
    }
    return n;
}

}  // namespace nesgx::sgx
