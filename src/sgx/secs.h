/**
 * SGX Enclave Control Structure (SECS) and Thread Control Structure (TCS)
 * as the microcode-internal view of the model.
 *
 * The nested-enclave extension (paper Fig. 3) adds exactly two fields:
 * `outerEids` (SECS addresses of the associated outer enclaves — one in
 * the paper's default model, several under the §VIII multi-outer
 * extension) and `innerEids` (all associated inner enclaves).
 */
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "crypto/sha256.h"
#include "hw/core.h"
#include "hw/types.h"
#include "sgx/measurement.h"
#include "sgx/sigstruct.h"
#include "sgx/types.h"

namespace nesgx::sgx {

struct Secs {
    EnclaveId eid = 0;              ///< unique id, never reused
    hw::Vaddr baseAddr = 0;         ///< ELRANGE base
    std::uint64_t size = 0;         ///< ELRANGE size (bytes)
    bool initialized = false;       ///< EINIT completed

    Measurement mrenclave{};        ///< finalized at EINIT
    Measurement mrsigner{};         ///< SHA-256 of the author's modulus
    std::uint64_t attributes = 0;

    // --- nested-enclave extension (paper Fig. 3) -----------------------
    /**
     * SECS PAs of the associated outer enclaves. Front entry is the
     * primary outer; more than one entry only with kAttrMultiOuter
     * (paper §VIII "multiple outer enclaves"). Empty = not nested.
     */
    std::vector<hw::Paddr> outerEids;
    std::vector<hw::Paddr> innerEids;       ///< SECS PAs of inner enclaves

    /** Primary outer enclave's SECS PA (0 when not nested). */
    hw::Paddr outerEid() const
    {
        return outerEids.empty() ? 0 : outerEids.front();
    }

    bool hasOuter(hw::Paddr secsPa) const
    {
        for (hw::Paddr pa : outerEids) {
            if (pa == secsPa) return true;
        }
        return false;
    }

    // Author-signed association expectations, copied from SIGSTRUCT at
    // EINIT so NASSO validates against tamper-proof state.
    std::optional<PeerExpectation> expectedOuter;
    std::vector<PeerExpectation> allowedInners;

    // --- microcode-internal bookkeeping --------------------------------
    /** Measurement accumulation before EINIT. */
    MeasurementLog measurementLog;
    /** Cores whose stale translations ETRACK is still waiting on. */
    std::set<hw::CoreId> trackingSet;
    bool trackingActive = false;

    bool inELRange(hw::Vaddr va) const
    {
        return va >= baseAddr && va < baseAddr + size;
    }
};

struct Tcs {
    bool busy = false;       ///< an LP is executing on this thread
    hw::Vaddr entryPoint = 0;
    /** Frame stack saved by AEX for later ERESUME. */
    std::vector<hw::EnclaveFrame> savedFrames;
    bool hasSavedFrames = false;
};

}  // namespace nesgx::sgx
