/**
 * Enclave Page Cache Map (EPCM).
 *
 * The reverse map from each EPC physical page to (owner enclave, expected
 * virtual address, permissions, type). This is the structure the TLB-miss
 * validation flow consults (paper §II-B); nested enclave leaves it
 * unchanged (paper §IV-D: "the information in EPCM does not change").
 */
#pragma once

#include <vector>

#include "hw/types.h"
#include "sgx/types.h"
#include "support/status.h"

namespace nesgx::sgx {

struct EpcmEntry {
    bool valid = false;
    bool blocked = false;   ///< EBLOCK'ed, pending eviction
    PageType type = PageType::Reg;
    hw::Paddr ownerSecs = 0;  ///< SECS physical address of the owner
    hw::Vaddr vaddr = 0;      ///< enclave-specified virtual address
    PagePerms perms;
};

class Epcm {
  public:
    explicit Epcm(std::uint64_t pageCount) : entries_(pageCount) {}

    EpcmEntry& entry(std::uint64_t pageIndex) { return entries_[pageIndex]; }
    const EpcmEntry& entry(std::uint64_t pageIndex) const
    {
        return entries_[pageIndex];
    }

    std::uint64_t pageCount() const { return entries_.size(); }

    /** Number of valid entries owned by the given SECS. */
    std::uint64_t countOwnedBy(hw::Paddr secsPa) const;

  private:
    std::vector<EpcmEntry> entries_;
};

}  // namespace nesgx::sgx
