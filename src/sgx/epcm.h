/**
 * Enclave Page Cache Map (EPCM).
 *
 * The reverse map from each EPC physical page to (owner enclave, expected
 * virtual address, permissions, type). This is the structure the TLB-miss
 * validation flow consults (paper §II-B); nested enclave leaves it
 * unchanged (paper §IV-D: "the information in EPCM does not change").
 */
#pragma once

#include <array>
#include <mutex>
#include <vector>

#include "hw/types.h"
#include "sgx/types.h"
#include "support/status.h"

namespace nesgx::sgx {

struct EpcmEntry {
    bool valid = false;
    bool blocked = false;   ///< EBLOCK'ed, pending eviction
    PageType type = PageType::Reg;
    hw::Paddr ownerSecs = 0;  ///< SECS physical address of the owner
    hw::Vaddr vaddr = 0;      ///< enclave-specified virtual address
    PagePerms perms;
};

class Epcm {
  public:
    /** Stripe fan-out for the per-frame mutexes. 64 stripes keep two
     *  concurrent paging/validation flows on distinct frames from ever
     *  colliding in practice while costing one cacheline each. */
    static constexpr std::size_t kStripes = 64;

    explicit Epcm(std::uint64_t pageCount) : entries_(pageCount) {}

    EpcmEntry& entry(std::uint64_t pageIndex) { return entries_[pageIndex]; }
    const EpcmEntry& entry(std::uint64_t pageIndex) const
    {
        return entries_[pageIndex];
    }

    std::uint64_t pageCount() const { return entries_.size(); }

    /** Number of valid entries owned by the given SECS. */
    std::uint64_t countOwnedBy(hw::Paddr secsPa) const;

    /**
     * Striped per-frame lock, keyed by EPC frame index. The TLB-miss
     * validation walk (machine_access.cpp) snapshots the entry under
     * this lock so a concurrent paging-leaf mutation of the *same frame*
     * can never be observed torn; distinct frames map to distinct
     * stripes (mod kStripes) and proceed in parallel.
     */
    std::unique_lock<std::mutex> lockFrame(std::uint64_t pageIndex) const
    {
        return std::unique_lock<std::mutex>(stripes_[pageIndex % kStripes].m);
    }

  private:
    struct alignas(64) Stripe {
        std::mutex m;
    };

    std::vector<EpcmEntry> entries_;
    mutable std::array<Stripe, kStripes> stripes_;
};

}  // namespace nesgx::sgx
