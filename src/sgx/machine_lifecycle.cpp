/**
 * ENCLS lifecycle leaves: ECREATE, EADD, EEXTEND, EINIT, EREMOVE, NASSO.
 */
#include <algorithm>

#include "fault/injector.h"
#include "sgx/machine.h"

namespace nesgx::sgx {

namespace {

bool
pageAligned(std::uint64_t v)
{
    return (v & (hw::kPageSize - 1)) == 0;
}

}  // namespace

Status
Machine::ecreate(hw::Paddr secsPage, hw::Vaddr baseAddr, std::uint64_t size,
                 std::uint64_t attributes)
{
    // Lifecycle leaves rewrite the structural tables (EPCM, SECS/TCS
    // maps, association graph): exclusive against every other leaf.
    std::unique_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Ecreate, trace::kNoCore, secsPage,
                      [&] { return ecreateImpl(secsPage, baseAddr, size, attributes); });
}

Status
Machine::ecreateImpl(hw::Paddr secsPage, hw::Vaddr baseAddr, std::uint64_t size,
                 std::uint64_t attributes)
{
    if (faultFires(fault::FaultSite::EcreateFail)) {
        return Err::GeneralProtection;
    }
    charge(costs_.ecreate);
    if (!mem_.inPrm(secsPage) || !pageAligned(secsPage)) {
        return Err::GeneralProtection;
    }
    // ELRANGE must be contiguous, size-aligned and page-granular (§II-B).
    if (!pageAligned(baseAddr) || !pageAligned(size) || size == 0) {
        return Err::GeneralProtection;
    }
    EpcmEntry& entry = epcm_.entry(mem_.epcPageIndex(secsPage));
    if (entry.valid) return Err::PageInUse;

    {
        auto stripe = epcm_.lockFrame(mem_.epcPageIndex(secsPage));
        entry = EpcmEntry{};
        entry.valid = true;
        entry.type = PageType::Secs;
        entry.ownerSecs = secsPage;  // SECS pages own themselves
        entry.vaddr = 0;
    }

    Secs secs;
    secs.eid = nextEid_++;
    secs.baseAddr = baseAddr;
    secs.size = size;
    secs.attributes = attributes;
    secs.measurementLog.recordCreate(size);
    secsTable_[secsPage] = std::move(secs);
    return Status::ok();
}

Status
Machine::eadd(hw::Paddr secsPage, hw::Paddr epcPage, hw::Vaddr vaddr,
              PageType type, PagePerms perms, ByteView src)
{
    std::unique_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Eadd, trace::kNoCore, epcPage,
                      [&] { return eaddImpl(secsPage, epcPage, vaddr, type, perms, src); });
}

Status
Machine::eaddImpl(hw::Paddr secsPage, hw::Paddr epcPage, hw::Vaddr vaddr,
              PageType type, PagePerms perms, ByteView src)
{
    if (faultFires(fault::FaultSite::EaddFail)) {
        return Err::GeneralProtection;
    }
    charge(costs_.eadd);
    Secs* secs = secsAt(secsPage);
    if (!secs || secs->initialized) return Err::GeneralProtection;
    if (!mem_.inPrm(epcPage) || !pageAligned(epcPage) || !pageAligned(vaddr)) {
        return Err::GeneralProtection;
    }
    if (type == PageType::Secs) return Err::GeneralProtection;
    // The page's virtual address must fall inside the enclave's ELRANGE;
    // that layout is fixed by the author and measured (§II-B).
    if (!secs->inELRange(vaddr)) return Err::GeneralProtection;
    if (!src.empty() && src.size() != hw::kPageSize) {
        return Err::GeneralProtection;
    }

    EpcmEntry& entry = epcm_.entry(mem_.epcPageIndex(epcPage));
    if (entry.valid) return Err::PageInUse;

    {
        auto stripe = epcm_.lockFrame(mem_.epcPageIndex(epcPage));
        entry = EpcmEntry{};
        entry.valid = true;
        entry.type = type;
        entry.ownerSecs = secsPage;
        entry.vaddr = vaddr;
        entry.perms = (type == PageType::Tcs) ? PagePerms{false, false, false}
                                              : perms;
    }

    if (src.empty()) {
        mem_.fill(epcPage, 0, hw::kPageSize);
    } else {
        mem_.write(epcPage, src.data(), src.size());
    }
    if (type == PageType::Tcs) {
        tcsTable_[epcPage] = Tcs{};
    }

    secs->measurementLog.recordAdd(vaddr - secs->baseAddr, type, perms);
    return Status::ok();
}

Status
Machine::eextend(hw::Paddr secsPage, hw::Paddr epcPage)
{
    std::unique_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Eextend, trace::kNoCore, epcPage,
                      [&] { return eextendImpl(secsPage, epcPage); });
}

Status
Machine::eextendImpl(hw::Paddr secsPage, hw::Paddr epcPage)
{
    Secs* secs = secsAt(secsPage);
    if (!secs || secs->initialized) return Err::GeneralProtection;
    if (!mem_.inPrm(epcPage)) return Err::GeneralProtection;
    const EpcmEntry& entry = epcm_.entry(mem_.epcPageIndex(epcPage));
    if (!entry.valid || entry.ownerSecs != secsPage) {
        return Err::InvalidEpcPage;
    }

    // Real EEXTEND measures one 256-byte chunk per invocation; the model
    // folds the whole page (16 chunks) and charges per chunk.
    std::uint64_t pageOffset = entry.vaddr - secs->baseAddr;
    for (std::uint64_t off = 0; off < hw::kPageSize; off += kMeasureChunk) {
        charge(costs_.eextendChunk);
        secs->measurementLog.recordExtend(
            pageOffset + off, ByteView(mem_.raw(epcPage + off), kMeasureChunk));
    }
    return Status::ok();
}

Status
Machine::einit(hw::Paddr secsPage, const SigStruct& sig)
{
    std::unique_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Einit, trace::kNoCore, secsPage,
                      [&] { return einitImpl(secsPage, sig); });
}

Status
Machine::einitImpl(hw::Paddr secsPage, const SigStruct& sig)
{
    charge(costs_.einit);
    Secs* secs = secsAt(secsPage);
    if (!secs || secs->initialized) return Err::GeneralProtection;

    // 1. The author's signature over the SIGSTRUCT body must verify.
    if (!sig.verify()) return Err::InvalidSignature;

    // 2. The measured enclave must match the author's expected digest.
    Measurement measured = secs->measurementLog.finalize();
    if (!constantTimeEqual(ByteView(measured.data(), 32),
                           ByteView(sig.enclaveHash.data(), 32))) {
        return Err::InvalidMeasurement;
    }
    if (sig.attributes != secs->attributes) return Err::InvalidMeasurement;

    secs->mrenclave = measured;
    secs->mrsigner = sig.signerMeasurement();
    // Copy the author-signed association expectations into hardware state
    // so NASSO later validates against tamper-proof values (paper §IV-C).
    secs->expectedOuter = sig.expectedOuter;
    secs->allowedInners = sig.allowedInners;
    secs->initialized = true;
    return Status::ok();
}

Status
Machine::eremove(hw::Paddr epcPage)
{
    std::unique_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Eremove, trace::kNoCore, epcPage,
                      [&] { return eremoveImpl(epcPage); });
}

Status
Machine::eremoveImpl(hw::Paddr epcPage)
{
    if (!mem_.inPrm(epcPage)) return Err::GeneralProtection;
    std::uint64_t index = mem_.epcPageIndex(epcPage);
    EpcmEntry& entry = epcm_.entry(index);
    if (!entry.valid) return Err::InvalidEpcPage;

    if (entry.type == PageType::Secs) {
        // A SECS leaves last: all child pages must be gone, no live
        // *inner* associations, and no core may be executing in the
        // enclave. An inner enclave with outers may leave: its edges are
        // detached here, which is the association-teardown path.
        if (epcm_.countOwnedBy(epcPage) > 1) return Err::PageInUse;
        Secs* secs = secsAt(epcPage);
        if (secs && !secs->innerEids.empty()) return Err::PageInUse;
        if (!trackedCores(epcPage).empty()) return Err::PageInUse;
        if (secs) {
            for (hw::Paddr outerPa : secs->outerEids) {
                if (Secs* outer = secsAt(outerPa)) {
                    auto& inners = outer->innerEids;
                    inners.erase(
                        std::remove(inners.begin(), inners.end(), epcPage),
                        inners.end());
                }
            }
        }
        secsTable_.erase(epcPage);
        // Tagged entries validated under this context must never be
        // served to a later enclave reusing the same SECS frame.
        invalidateTlbForSecs(epcPage);
        // The association graph changed shape: memoized closures of any
        // former inner are stale.
        invalidateClosureCache();
    } else {
        if (!trackedCores(entry.ownerSecs).empty()) return Err::PageInUse;
        if (entry.type == PageType::Tcs) {
            auto it = tcsTable_.find(epcPage);
            if (it != tcsTable_.end()) {
                // Removing a TCS that holds an AEX-saved nest destroys
                // the only path that could ever resume it: release the
                // busy flag of every TCS in the saved frames so the rest
                // of the nest is not wedged busy forever.
#ifndef NESGX_BUG_EREMOVE_WEDGE
                for (const auto& frame : it->second.savedFrames) {
                    if (frame.tcs == epcPage) continue;
                    // Release only TCSes still belonging to the frame's
                    // recorded enclave generation: a stale frame's PA may
                    // have been recycled into a different enclave's TCS,
                    // whose busy flag is not this nest's to clear.
                    const Secs* owner = secsAt(frame.secs);
                    if (!owner || owner->eid != frame.eid) continue;
                    Tcs* t = tcsAt(frame.tcs);
                    if (t && epcm_.entry(mem_.epcPageIndex(frame.tcs))
                                     .ownerSecs == frame.secs) {
                        t->busy = false;
                    }
                }
#endif
                tcsTable_.erase(it);
            }
        }
    }
    {
        auto stripe = epcm_.lockFrame(index);
        entry = EpcmEntry{};
    }
    // The frame returns to the free pool; no TLB on any core may still
    // translate to it (the EPCM no longer vouches for the mapping).
    invalidateTlbForPage(epcPage);
    return Status::ok();
}

Status
Machine::nasso(hw::Paddr innerSecsPage, hw::Paddr outerSecsPage)
{
    std::unique_lock<std::shared_mutex> g(stateMutex_);
    return tracedLeaf(trace::Leaf::Nasso, trace::kNoCore, innerSecsPage,
                      [&] { return nassoImpl(innerSecsPage, outerSecsPage); });
}

Status
Machine::nassoImpl(hw::Paddr innerSecsPage, hw::Paddr outerSecsPage)
{
    charge(costs_.nasso);
    Secs* inner = secsAt(innerSecsPage);
    Secs* outer = secsAt(outerSecsPage);
    if (!inner || !outer || innerSecsPage == outerSecsPage) {
        return Err::GeneralProtection;
    }
    if (!inner->initialized || !outer->initialized) {
        return Err::GeneralProtection;
    }
    // Single-outer-per-inner by default (paper §IV-A); an inner built
    // with kAttrMultiOuter may join several outers (paper §VIII).
    if (!inner->outerEids.empty() &&
        !(inner->attributes & kAttrMultiOuter)) {
        return Err::GeneralProtection;
    }
    if (inner->hasOuter(outerSecsPage)) return Err::GeneralProtection;
    // No cycles: the outer must not (transitively) nest inside the inner.
    if (outerSecsPage == innerSecsPage) return Err::GeneralProtection;
    for (hw::Paddr reachable : outerClosure(outerSecsPage)) {
        if (reachable == innerSecsPage) return Err::GeneralProtection;
    }

    // Mutual validation against the author-signed expectations carried in
    // each enclave's signed file (paper Fig. 4): the inner names its
    // expected outer, the outer lists the inners allowed to join.
    if (!inner->expectedOuter ||
        !inner->expectedOuter->matches(outer->mrenclave, outer->mrsigner)) {
        return Err::AssociationRejected;
    }
    bool allowed = false;
    for (const auto& pe : outer->allowedInners) {
        if (pe.matches(inner->mrenclave, inner->mrsigner)) {
            allowed = true;
            break;
        }
    }
    if (!allowed) return Err::AssociationRejected;

    inner->outerEids.push_back(outerSecsPage);
    outer->innerEids.push_back(innerSecsPage);
    // The graph gained an edge: every memoized closure that could reach
    // the inner is stale (and the cycle check above may have populated
    // the pre-edge closure of the outer).
    invalidateClosureCache();
    // A translation the inner validated *before* the association (e.g. a
    // non-EPC page now shadowed by the new outer's ELRANGE) must be
    // re-validated under the post-NASSO rules.
    invalidateTlbForSecs(innerSecsPage);
    return Status::ok();
}

}  // namespace nesgx::sgx
