/**
 * Attestation report formats: EREPORT (SGX-compatible) and NEREPORT
 * (paper §IV-B/§IV-E), which additionally attests the nested association
 * graph — the outer enclave's measurement and all sibling inner
 * measurements — under the same MAC.
 */
#pragma once

#include <array>
#include <vector>

#include "sgx/types.h"
#include "support/bytes.h"

namespace nesgx::sgx {

constexpr std::size_t kReportDataSize = 64;

using ReportData = std::array<std::uint8_t, kReportDataSize>;

/** Identity of a report's intended verifier (local attestation target). */
struct TargetInfo {
    Measurement mrenclave{};
};

struct Report {
    Measurement mrenclave{};
    Measurement mrsigner{};
    std::uint64_t attributes = 0;
    ReportData reportData{};
    std::array<std::uint8_t, 32> mac{};

    /** Serializes the MAC'ed body. */
    Bytes macBody() const;
};

/** NEREPORT payload: the report plus the attested association relations. */
struct NestedReport {
    Report base;
    /** Measurement of the primary outer enclave (zero if none). */
    Measurement outerMeasurement{};
    /**
     * Nesting depth along the primary-outer chain: 0 = not nested, 1 =
     * one live outer above, 2 = outer-of-outer, ... A challenger can
     * therefore tell a depth-3 tenant from a depth-2 one — the boolean
     * it replaced collapsed every nested enclave into one bit.
     */
    std::uint32_t chainDepth = 0;

    bool nested() const { return chainDepth != 0; }
    /** All associated outers (>1 only under kAttrMultiOuter, §VIII). */
    std::vector<Measurement> outerMeasurements;
    /** Measurements of all inner enclaves associated with this enclave. */
    std::vector<Measurement> innerMeasurements;
    std::array<std::uint8_t, 32> mac{};

    Bytes macBody() const;
};

}  // namespace nesgx::sgx
