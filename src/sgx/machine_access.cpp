/**
 * The TLB-miss access-validation flow with the nested-enclave extension
 * (paper Fig. 2 for baseline SGX, Fig. 6 for the shaded extra steps).
 *
 * On a TLB miss the page-table entry supplied by the *untrusted* OS is
 * re-validated against the EPCM before it may enter the TLB:
 *
 *   (A) non-enclave mode:  PRM physical target        -> abort
 *   (B) enclave mode, PA in PRM:
 *         EPCM owner == current enclave && VA matches -> insert
 *         else walk the outer chain (nested steps 3-5):
 *           EPCM owner == some outer && VA matches    -> insert
 *           otherwise                                 -> fault
 *   (C) enclave mode, PA not in PRM:
 *         VA inside own ELRANGE                       -> #PF (evicted page)
 *         VA inside an outer's ELRANGE (steps 1-2)    -> #PF (evicted page)
 *         else untrusted page: insert, execute disabled
 */
#include "fault/injector.h"
#include "sgx/machine.h"

namespace nesgx::sgx {

namespace {

bool
permsAllow(const hw::TlbEntry& e, hw::Access a)
{
    switch (a) {
      case hw::Access::Read: return true;
      case hw::Access::Write: return e.writable;
      case hw::Access::Execute: return e.executable;
    }
    return false;
}

}  // namespace

Result<hw::Paddr>
Machine::validateAndFill(hw::CoreId coreId, hw::Vaddr va, hw::Access access)
{
    hw::Core& core = cores_[coreId];
    const std::uint64_t eid = coreEid(coreId);
    charge(costs_.tlbMissWalk);
    bus_.publishLight(trace::EventKind::TlbMiss, coreId, eid, va);

    const auto* pt = static_cast<const hw::PageTable*>(core.pageTable());
    if (!pt) return Err::PageFault;
    auto pte = pt->walk(va);
    if (!pte) return Err::PageFault;
    hw::Paddr pa = pte->paddr;

    hw::TlbEntry tlbEntry;
    tlbEntry.paddr = pa;
    tlbEntry.validatedSecs = core.currentSecs();

    if (!core.inEnclaveMode()) {
        // (A) Non-enclave execution must never reach the PRM.
        if (mem_.inPrm(pa)) {
            bus_.publishLight(trace::EventKind::AccessFault, coreId, eid, va);
            return Err::PageFault;
        }
        tlbEntry.writable = pte->writable;
        tlbEntry.executable = pte->executable;
        if (!permsAllow(tlbEntry, access)) return Err::PageFault;
        core.tlb().insert(va, tlbEntry);
        core.setLastTranslation(hw::pageNumber(va), tlbEntry);
        return pa + hw::pageOffset(va);
    }

    Secs* secs = secsAt(core.currentSecs());
    if (!secs) return Err::PageFault;

    if (mem_.inPrm(pa)) {
        // (B) Enclave mode, EPC physical target. The entry is snapshotted
        // under its EPCM stripe so a concurrent paging writer can never
        // be observed half-applied (a torn valid/owner pair would let a
        // stale mapping slip into the TLB).
        const EpcmEntry entry = [&] {
            auto stripe = epcm_.lockFrame(mem_.epcPageIndex(pa));
            return epcm_.entry(mem_.epcPageIndex(pa));
        }();
        if (!entry.valid || entry.blocked || entry.type != PageType::Reg) {
            bus_.publishLight(trace::EventKind::AccessFault, coreId, eid, va);
            return Err::PageFault;
        }

        const Secs* owner = nullptr;
        if (entry.ownerSecs == core.currentSecs()) {
            owner = secs;
        } else {
            // Nested extension, steps (3)-(5): the access is valid when
            // the page belongs to an enclave reachable through this
            // enclave's outer associations (a chain in the default
            // model, a DAG under kAttrMultiOuter). Each visited node
            // costs extra validation time — unless closureCacheCosts
            // prices a memoized closure as one flat lookaside probe.
            bool closureHit = false;
            const auto& closure =
                outerClosure(core.currentSecs(), &closureHit);
            const bool flat = config_.closureCacheCosts && closureHit;
            if (flat) {
                charge(costs_.nestedCheckExtra);
                bus_.publishLight(trace::EventKind::NestedCheck, coreId, eid,
                                  core.currentSecs());
            }
            for (hw::Paddr cur : closure) {
                if (!flat) {
                    charge(costs_.nestedCheckExtra);
                    bus_.publishLight(trace::EventKind::NestedCheck, coreId,
                                      eid, cur);
                }
                if (entry.ownerSecs == cur) {
                    owner = secsAt(cur);
                    break;
                }
            }
        }
        if (!owner) {
            bus_.publishLight(trace::EventKind::AccessFault, coreId, eid, va);
            return Err::PageFault;
        }
        // The EPCM-recorded virtual address must match the mapping the OS
        // supplied (invariants 3 and 4, paper §VII-A).
        if (entry.vaddr != hw::pageBase(va)) {
            bus_.publishLight(trace::EventKind::AccessFault, coreId, eid, va);
            return Err::PageFault;
        }
        tlbEntry.writable = entry.perms.w && pte->writable;
        tlbEntry.executable = entry.perms.x && pte->executable;
        if (!entry.perms.allows(access) || !permsAllow(tlbEntry, access)) {
            bus_.publishLight(trace::EventKind::AccessFault, coreId, eid, va);
            return Err::PageFault;
        }
        core.tlb().insert(va, tlbEntry);
        core.setLastTranslation(hw::pageNumber(va), tlbEntry);
        return pa + hw::pageOffset(va);
    }

    // (C) Enclave mode, non-EPC physical target.
    if (secs->inELRange(va)) {
        // An enclave virtual page backed by ordinary memory means the EPC
        // page was evicted (or the OS lies): page fault either way.
        bus_.publishLight(trace::EventKind::AccessFault, coreId, eid, va);
        return Err::PageFault;
    }
    // Nested steps (1)-(2): same check for every reachable outer ELRANGE
    // (same flat pricing on a closure-cache hit as the EPC branch — the
    // ELRANGE probes still run, they are just covered by one charge).
    bool closureHit = false;
    const auto& closure = outerClosure(core.currentSecs(), &closureHit);
    const bool flat = config_.closureCacheCosts && closureHit;
    if (flat) {
        charge(costs_.nestedCheckExtra);
        bus_.publishLight(trace::EventKind::NestedCheck, coreId, eid,
                          core.currentSecs());
    }
    for (hw::Paddr cur : closure) {
        if (!flat) {
            charge(costs_.nestedCheckExtra);
            bus_.publishLight(trace::EventKind::NestedCheck, coreId, eid, cur);
        }
        const Secs* outer = secsAt(cur);
        if (outer && outer->inELRange(va)) {
            bus_.publishLight(trace::EventKind::AccessFault, coreId, eid, va);
            return Err::PageFault;
        }
    }
    // A translation to unsecure memory from enclave mode: allowed for
    // data, but never executable (paper Fig. 6 bottom-right).
    tlbEntry.writable = pte->writable;
    tlbEntry.executable = false;
    if (access == hw::Access::Execute) {
        bus_.publishLight(trace::EventKind::AccessFault, coreId, eid, va);
        return Err::PageFault;
    }
    core.tlb().insert(va, tlbEntry);
    core.setLastTranslation(hw::pageNumber(va), tlbEntry);
    return pa + hw::pageOffset(va);
}

Result<hw::Paddr>
Machine::translate(hw::CoreId coreId, hw::Vaddr va, hw::Access access)
{
    std::shared_lock<std::shared_mutex> g(stateMutex_);
    return translateLocked(coreId, va, access);
}

Result<hw::Paddr>
Machine::translateLocked(hw::CoreId coreId, hw::Vaddr va, hw::Access access)
{
    hw::Core& core = cores_[coreId];

    // L0: the last successful translation, trusted only while the TLB
    // generation proves nothing has been flushed, evicted or replaced
    // since — and only for the same protection context.
    const hw::TranslationCache& last = core.lastTranslation();
    if (last.valid && last.generation == core.tlb().generation()
        && last.vpn == hw::pageNumber(va)
        && last.entry.validatedSecs == core.currentSecs()
        && permsAllow(last.entry, access)) {
        charge(costs_.tlbHit);
        publishTlbHit(coreId, va);
        return last.entry.paddr + hw::pageOffset(va);
    }

    if (const hw::TlbEntry* hit = tlbProbe(core, va)) {
        if (permsAllow(*hit, access)) {
            charge(costs_.tlbHit);
            publishTlbHit(coreId, va);
            core.setLastTranslation(hw::pageNumber(va), *hit);
            return hit->paddr + hw::pageOffset(va);
        }
        // Permission upgrade (e.g. read-validated entry, write access)
        // re-runs the full validation rather than trusting the TLB.
    }
    return validateAndFill(coreId, va, access);
}

Status
Machine::accessRange(hw::CoreId coreId, hw::Vaddr va, std::uint8_t* out,
                     const std::uint8_t* in, std::uint64_t len)
{
    // Shared for the whole (possibly multi-page) access: the data path
    // only touches this core's TLB/translation register plus structures
    // with their own locks, and structural writers are excluded for the
    // duration so a page cannot be evicted out from under the copy loop.
    std::shared_lock<std::shared_mutex> g(stateMutex_);

    // Spurious-interrupt storm: the running nest AEXes to its bottom TCS
    // and is immediately ERESUMEd, paying the full save/flush/restore and
    // re-running the EENTER-grade frame revalidation before the access
    // proceeds. If the resume is refused (the nest was torn down under
    // us) the access falls through to the normal fault path below. The
    // locked leaf variants keep the trace brackets while reusing this
    // call's shared hold.
    if (faultInjector_ && cores_[coreId].inEnclaveMode() &&
        faultFiresSlow(fault::FaultSite::AexStorm, coreId)) {
        const hw::Paddr bottom = cores_[coreId].bottomTcs();
        if (aexLocked(coreId)) (void)eresumeLocked(coreId, bottom);
    }

    const hw::Access access = out ? hw::Access::Read : hw::Access::Write;
    hw::Core& core = cores_[coreId];
    std::uint64_t done = 0;
    // Physical base of the previously accessed page, valid while the
    // TLB generation is unchanged — lets a multi-page streaming access
    // reuse its translation register instead of re-translating when the
    // next validated entry maps the physically adjacent frame.
    bool havePrev = false;
    hw::Paddr prevFrame = 0;
    std::uint64_t prevGen = 0;

    while (done < len) {
        hw::Vaddr cur = va + done;
        std::uint64_t inPage =
            std::min<std::uint64_t>(len - done,
                                    hw::kPageSize - hw::pageOffset(cur));
        hw::Paddr pa = 0;
        bool translated = false;
        if (havePrev && hw::pageOffset(cur) == 0
            && prevGen == core.tlb().generation()) {
            const hw::TlbEntry* e = core.tlb().lookup(cur, core.currentSecs());
            if (e && e->paddr == prevFrame + hw::kPageSize
                && permsAllow(*e, access)) {
                charge(costs_.tlbHitContiguous);
                publishTlbHit(coreId, cur);
                pa = e->paddr;
                translated = true;
            }
        }
        if (!translated) {
            auto r = translateLocked(coreId, cur, access);
            if (!r) return r.status();
            pa = r.value() - hw::pageOffset(cur);
        }
        havePrev = true;
        prevFrame = pa;
        prevGen = core.tlb().generation();

        const hw::Paddr target = pa + hw::pageOffset(cur);
        chargeDataPath(target, inPage);
        if (out) {
            mem_.read(target, out + done, inPage);
        } else {
            mem_.write(target, in + done, inPage);
        }
        done += inPage;
    }
    return Status::ok();
}

Status
Machine::read(hw::CoreId coreId, hw::Vaddr va, std::uint8_t* out,
              std::uint64_t len)
{
    return accessRange(coreId, va, out, nullptr, len);
}

Status
Machine::write(hw::CoreId coreId, hw::Vaddr va, const std::uint8_t* in,
               std::uint64_t len)
{
    return accessRange(coreId, va, nullptr, in, len);
}

Status
Machine::fetch(hw::CoreId coreId, hw::Vaddr va)
{
    std::shared_lock<std::shared_mutex> g(stateMutex_);
    auto pa = translateLocked(coreId, va, hw::Access::Execute);
    return pa.status();
}

}  // namespace nesgx::sgx
