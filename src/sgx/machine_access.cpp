/**
 * The TLB-miss access-validation flow with the nested-enclave extension
 * (paper Fig. 2 for baseline SGX, Fig. 6 for the shaded extra steps).
 *
 * On a TLB miss the page-table entry supplied by the *untrusted* OS is
 * re-validated against the EPCM before it may enter the TLB:
 *
 *   (A) non-enclave mode:  PRM physical target        -> abort
 *   (B) enclave mode, PA in PRM:
 *         EPCM owner == current enclave && VA matches -> insert
 *         else walk the outer chain (nested steps 3-5):
 *           EPCM owner == some outer && VA matches    -> insert
 *           otherwise                                 -> fault
 *   (C) enclave mode, PA not in PRM:
 *         VA inside own ELRANGE                       -> #PF (evicted page)
 *         VA inside an outer's ELRANGE (steps 1-2)    -> #PF (evicted page)
 *         else untrusted page: insert, execute disabled
 */
#include "sgx/machine.h"

namespace nesgx::sgx {

namespace {

bool
permsAllow(const hw::TlbEntry& e, hw::Access a)
{
    switch (a) {
      case hw::Access::Read: return true;
      case hw::Access::Write: return e.writable;
      case hw::Access::Execute: return e.executable;
    }
    return false;
}

}  // namespace

Result<hw::Paddr>
Machine::validateAndFill(hw::CoreId coreId, hw::Vaddr va, hw::Access access)
{
    hw::Core& core = cores_[coreId];
    charge(costs_.tlbMissWalk);
    ++stats_.tlbMisses;

    const auto* pt = static_cast<const hw::PageTable*>(core.pageTable());
    if (!pt) return Err::PageFault;
    auto pte = pt->walk(va);
    if (!pte) return Err::PageFault;
    hw::Paddr pa = pte->paddr;

    hw::TlbEntry tlbEntry;
    tlbEntry.paddr = pa;
    tlbEntry.validatedSecs = core.currentSecs();

    if (!core.inEnclaveMode()) {
        // (A) Non-enclave execution must never reach the PRM.
        if (mem_.inPrm(pa)) {
            ++stats_.accessFaults;
            return Err::PageFault;
        }
        tlbEntry.writable = pte->writable;
        tlbEntry.executable = pte->executable;
        if (!permsAllow(tlbEntry, access)) return Err::PageFault;
        core.tlb().insert(va, tlbEntry);
        return pa + hw::pageOffset(va);
    }

    Secs* secs = secsAt(core.currentSecs());
    if (!secs) return Err::PageFault;

    if (mem_.inPrm(pa)) {
        // (B) Enclave mode, EPC physical target.
        const EpcmEntry& entry = epcm_.entry(mem_.epcPageIndex(pa));
        if (!entry.valid || entry.blocked || entry.type != PageType::Reg) {
            ++stats_.accessFaults;
            return Err::PageFault;
        }

        const Secs* owner = nullptr;
        if (entry.ownerSecs == core.currentSecs()) {
            owner = secs;
        } else {
            // Nested extension, steps (3)-(5): the access is valid when
            // the page belongs to an enclave reachable through this
            // enclave's outer associations (a chain in the default
            // model, a DAG under kAttrMultiOuter). Each visited node
            // costs extra validation time.
            for (hw::Paddr cur : outerClosure(core.currentSecs())) {
                charge(costs_.nestedCheckExtra);
                ++stats_.nestedChecks;
                if (entry.ownerSecs == cur) {
                    owner = secsAt(cur);
                    break;
                }
            }
        }
        if (!owner) {
            ++stats_.accessFaults;
            return Err::PageFault;
        }
        // The EPCM-recorded virtual address must match the mapping the OS
        // supplied (invariants 3 and 4, paper §VII-A).
        if (entry.vaddr != hw::pageBase(va)) {
            ++stats_.accessFaults;
            return Err::PageFault;
        }
        tlbEntry.writable = entry.perms.w && pte->writable;
        tlbEntry.executable = entry.perms.x && pte->executable;
        if (!entry.perms.allows(access) || !permsAllow(tlbEntry, access)) {
            ++stats_.accessFaults;
            return Err::PageFault;
        }
        core.tlb().insert(va, tlbEntry);
        return pa + hw::pageOffset(va);
    }

    // (C) Enclave mode, non-EPC physical target.
    if (secs->inELRange(va)) {
        // An enclave virtual page backed by ordinary memory means the EPC
        // page was evicted (or the OS lies): page fault either way.
        ++stats_.accessFaults;
        return Err::PageFault;
    }
    // Nested steps (1)-(2): same check for every reachable outer ELRANGE.
    for (hw::Paddr cur : outerClosure(core.currentSecs())) {
        charge(costs_.nestedCheckExtra);
        ++stats_.nestedChecks;
        const Secs* outer = secsAt(cur);
        if (outer && outer->inELRange(va)) {
            ++stats_.accessFaults;
            return Err::PageFault;
        }
    }
    // A translation to unsecure memory from enclave mode: allowed for
    // data, but never executable (paper Fig. 6 bottom-right).
    tlbEntry.writable = pte->writable;
    tlbEntry.executable = false;
    if (access == hw::Access::Execute) {
        ++stats_.accessFaults;
        return Err::PageFault;
    }
    core.tlb().insert(va, tlbEntry);
    return pa + hw::pageOffset(va);
}

Result<hw::Paddr>
Machine::translate(hw::CoreId coreId, hw::Vaddr va, hw::Access access)
{
    hw::Core& core = cores_[coreId];
    if (const hw::TlbEntry* hit = core.tlb().lookup(va)) {
        if (permsAllow(*hit, access)) {
            charge(costs_.tlbHit);
            ++stats_.tlbHits;
            return hit->paddr + hw::pageOffset(va);
        }
        // Permission upgrade (e.g. read-validated entry, write access)
        // re-runs the full validation rather than trusting the TLB.
    }
    return validateAndFill(coreId, va, access);
}

Status
Machine::read(hw::CoreId coreId, hw::Vaddr va, std::uint8_t* out,
              std::uint64_t len)
{
    std::uint64_t done = 0;
    while (done < len) {
        hw::Vaddr cur = va + done;
        std::uint64_t inPage =
            std::min<std::uint64_t>(len - done,
                                    hw::kPageSize - hw::pageOffset(cur));
        auto pa = translate(coreId, cur, hw::Access::Read);
        if (!pa) return pa.status();
        chargeDataPath(pa.value(), inPage);
        mem_.read(pa.value(), out + done, inPage);
        done += inPage;
    }
    return Status::ok();
}

Status
Machine::write(hw::CoreId coreId, hw::Vaddr va, const std::uint8_t* in,
               std::uint64_t len)
{
    std::uint64_t done = 0;
    while (done < len) {
        hw::Vaddr cur = va + done;
        std::uint64_t inPage =
            std::min<std::uint64_t>(len - done,
                                    hw::kPageSize - hw::pageOffset(cur));
        auto pa = translate(coreId, cur, hw::Access::Write);
        if (!pa) return pa.status();
        chargeDataPath(pa.value(), inPage);
        mem_.write(pa.value(), in + done, inPage);
        done += inPage;
    }
    return Status::ok();
}

Status
Machine::fetch(hw::CoreId coreId, hw::Vaddr va)
{
    auto pa = translate(coreId, va, hw::Access::Execute);
    return pa.status();
}

}  // namespace nesgx::sgx
