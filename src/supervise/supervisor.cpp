#include "supervise/supervisor.h"

#include <vector>

#include "trace/bus.h"

namespace nesgx::supervise {

const char*
wedgeReasonName(WedgeReason r)
{
    switch (r) {
      case WedgeReason::None: return "none";
      case WedgeReason::NoProgress: return "no-progress";
      case WedgeReason::RingWedged: return "ring-wedged";
      case WedgeReason::GatewayDown: return "gateway-down";
      case WedgeReason::HostDegraded: return "host-degraded";
    }
    return "?";
}

const char*
rungName(Rung r)
{
    switch (r) {
      case Rung::Healthy: return "healthy";
      case Rung::Kick: return "kick";
      case Rung::TenantRebuild: return "tenant-rebuild";
      case Rung::SubtreeRebuild: return "subtree-rebuild";
      case Rung::Evacuate: return "evacuate";
    }
    return "?";
}

Supervisor::Supervisor(serve::TenantService& svc, Config config)
    : svc_(&svc), config_(config)
{
}

void
Supervisor::attachEngine(migrate::MigrationEngine& engine)
{
    engine_ = &engine;
}

void
Supervisor::attachFleet(migrate::Fleet& fleet,
                        migrate::MigrationEngine& engine,
                        std::size_t hostIndex)
{
    fleet_ = &fleet;
    engine_ = &engine;
    hostIndex_ = hostIndex;
}

sgx::Machine&
Supervisor::machine()
{
    return svc_->registry().urts().machine();
}

WedgeReason
Supervisor::classify(const serve::TenantHandle& tenant,
                     std::size_t queued) const
{
    serve::TenantRegistry& reg = svc_->registry();
    // Severity order: the widest failure domain wins, so the ladder
    // enters at the rung that can actually cure it.
    if (reg.degraded()) return WedgeReason::HostDegraded;
    if (reg.gatewayCrashed(tenant.gatewayIndex)) {
        return WedgeReason::GatewayDown;
    }
    if (auto* engine = svc_->switchlessEngine()) {
        if (engine->channelProgress(tenant.id).wedged) {
            return WedgeReason::RingWedged;
        }
    }
    if (queued > 0) return WedgeReason::NoProgress;
    if (svc_->pool().breakerOpen(tenant.id)) return WedgeReason::NoProgress;
    return WedgeReason::None;  // idle, not wedged
}

Rung
Supervisor::entryRung(WedgeReason reason) const
{
    switch (reason) {
      case WedgeReason::HostDegraded:
        // Rebuilding on a dying host is wasted work; leave instead.
        return Rung::Evacuate;
      case WedgeReason::GatewayDown:
        // Only a subtree rebuild clears the crash marker.
        return Rung::SubtreeRebuild;
      case WedgeReason::RingWedged:
        return Rung::Kick;
      case WedgeReason::NoProgress:
        // A kick is only meaningful when a channel exists to kick.
        return svc_->switchlessEngine() ? Rung::Kick : Rung::TenantRebuild;
      case WedgeReason::None: break;
    }
    return Rung::Healthy;
}

bool
Supervisor::act(serve::TenantHandle& tenant, Watch& watch)
{
    switch (watch.rung) {
      case Rung::Kick: {
        auto* engine = svc_->switchlessEngine();
        if (!engine) return false;  // nothing to kick; climb next tick
        engine->disarm(tenant.id);
        ++stats_.kicks;
        return true;
      }
      case Rung::TenantRebuild:
        ++stats_.tenantRebuilds;
        (void)svc_->pool().rebuildTenant(tenant);
        return true;
      case Rung::SubtreeRebuild:
        ++stats_.subtreeRebuilds;
        (void)svc_->pool().rebuildSubtree(tenant.gatewayIndex);
        return true;
      case Rung::Evacuate:
        return evacuate(tenant, watch);
      case Rung::Healthy: break;
    }
    return false;
}

bool
Supervisor::evacuate(serve::TenantHandle& tenant, Watch& watch)
{
    // A committed host move destroys `tenant` (the source registry
    // retires it): capture everything needed up front and never touch
    // the handle after the migration call.
    const serve::TenantId id = tenant.id;
    const std::uint64_t begin = machine().clock().cycles();
    Status st = Err::Unavailable;
    std::uint64_t hop = 0;  // SuperviseEvacuate arg1: 0 gateway / 1 host

    // A crashed gateway blocks the export path itself (every dispatch
    // through it refuses): rebuild the subtree first so the evacuation
    // has a live source to drain.
    if (svc_->registry().gatewayCrashed(tenant.gatewayIndex)) {
        ++stats_.subtreeRebuilds;
        (void)svc_->pool().rebuildSubtree(tenant.gatewayIndex);
    }

    if (fleet_ && engine_ && fleet_->hostCount() > 1) {
        // First non-degraded host that is not this one.
        std::size_t dst = (hostIndex_ + 1) % fleet_->hostCount();
        for (std::size_t i = 0; i < fleet_->hostCount(); ++i) {
            const std::size_t cand =
                (hostIndex_ + 1 + i) % fleet_->hostCount();
            if (cand == hostIndex_) continue;
            serve::TenantService* host = fleet_->host(cand);
            if (host && !host->registry().degraded()) {
                dst = cand;
                break;
            }
        }
        hop = 1;
        st = fleet_->migrateAcross(*engine_, id, dst);
    } else if (engine_) {
        hop = 0;
        st = engine_->migrateToGateway(*svc_, id);
    } else {
        return false;  // no engine attached: the ladder tops out
    }

    const std::uint64_t now = machine().clock().cycles();
    if (!st) {
        ++stats_.evacuationFailures;
        return true;
    }
    ++stats_.evacuations;
    stats_.evacuationLatency.add(now - begin);
    machine().trace().publishLight(trace::EventKind::SuperviseEvacuate,
                                   trace::kNoCore, 0, id, hop);
    // The evacuation resolved the wedge: the tenant now lives somewhere
    // this failure domain cannot reach. For a host move the watch is
    // swept when the tenant vanishes from the registry; for a gateway
    // move reset it so the fresh placement starts clean.
    ++stats_.recoveries;
    stats_.recoveryLatency.add(now - watch.wedgedAtCycles);
    watch.wedged = false;
    watch.reason = WedgeReason::None;
    watch.rung = Rung::Healthy;
    watch.staleTicks = 0;
    watch.rungTicks = 0;
    watch.lastProgressCycles = now;
    return true;
}

std::size_t
Supervisor::tick()
{
    ++stats_.ticks;
    sgx::Machine& m = machine();
    serve::TenantRegistry& reg = svc_->registry();
    const std::uint64_t now = m.clock().cycles();

    // Sweep watches whose tenants left (evacuated cross-host, retired).
    for (auto it = watches_.begin(); it != watches_.end();) {
        if (!reg.find(it->first)) {
            it = watches_.erase(it);
        } else {
            ++it;
        }
    }

    // Snapshot the id set first: ladder actions (evacuation) mutate the
    // tenant map mid-loop.
    std::vector<serve::TenantId> ids;
    ids.reserve(reg.tenants().size());
    for (const auto& [id, handle] : reg.tenants()) ids.push_back(id);

    std::size_t actions = 0;
    for (serve::TenantId id : ids) {
        serve::TenantHandle* tenant = reg.find(id);
        if (!tenant) continue;
        Watch& watch = watches_[id];
        if (watch.lastProgressCycles == 0) watch.lastProgressCycles = now;

        const std::uint64_t ok = tenant->okServed.load();
        if (ok != watch.lastOkServed) {
            // Progress: the heartbeat advanced since the last tick.
            if (watch.wedged) {
                ++stats_.recoveries;
                stats_.recoveryLatency.add(now - watch.wedgedAtCycles);
            }
            watch.lastOkServed = ok;
            watch.lastProgressCycles = now;
            watch.staleTicks = 0;
            watch.wedged = false;
            watch.reason = WedgeReason::None;
            watch.rung = Rung::Healthy;
            watch.rungTicks = 0;
            continue;
        }

        const WedgeReason reason =
            classify(*tenant, svc_->admission().depth(id));
        if (reason == WedgeReason::None) {
            // Idle: no work queued, nothing broken — not a wedge.
            if (!watch.wedged) watch.staleTicks = 0;
            watch.lastSeenCycles = now;
            continue;
        }

        // Zero simulated time since this watch was last sampled means
        // no new evidence: callers that tick many times per serving
        // round (the CLI recovery loop ticks once per tenant) must not
        // let a single stall escalate through the whole ladder before
        // the pool's own half-open probes even come due.
        const bool clockAdvanced = now != watch.lastSeenCycles;
        watch.lastSeenCycles = now;

        if (!watch.wedged) {
            if (!clockAdvanced) continue;
            ++watch.staleTicks;
            if (watch.staleTicks < config_.wedgeTicks) continue;
            // Flag the wedge and take the entry rung's action at once:
            // detection already cost `wedgeTicks` of patience.
            watch.wedged = true;
            watch.wedgedAtCycles = now;
            watch.reason = reason;
            watch.rung = entryRung(reason);
            watch.rungTicks = 0;
            ++stats_.wedges;
            stats_.detectionLatency.add(now - watch.lastProgressCycles);
            m.trace().publishLight(trace::EventKind::SuperviseWedge,
                                   trace::kNoCore, 0, id,
                                   std::uint64_t(reason));
            m.trace().publishLight(trace::EventKind::SuperviseEscalate,
                                   trace::kNoCore, 0, id,
                                   std::uint64_t(watch.rung));
            if (act(*tenant, watch)) ++actions;
            if (!reg.find(id)) watches_.erase(id);
            continue;
        }

        // Already wedged. A widening failure domain (e.g. the host
        // degraded after a plain wedge) jumps the ladder immediately;
        // otherwise the current rung gets `rungPatience` ticks before
        // the climb.
        const Rung needed = entryRung(reason);
        bool climb = false;
        if (std::uint8_t(needed) > std::uint8_t(watch.rung)) {
            watch.rung = needed;
            climb = true;
        } else if (!clockAdvanced) {
            continue;
        } else if (++watch.rungTicks >= config_.rungPatience) {
            // Top rung retries instead of pinning: an evacuation that
            // failed (no healthy destination yet, mid-storm abort) gets
            // another attempt every rungPatience ticks.
            if (watch.rung < Rung::Evacuate) {
                watch.rung = Rung(std::uint8_t(watch.rung) + 1);
            }
            climb = true;
        }
        if (!climb) continue;
        watch.rungTicks = 0;
        m.trace().publishLight(trace::EventKind::SuperviseEscalate,
                               trace::kNoCore, 0, id,
                               std::uint64_t(watch.rung));
        if (act(*tenant, watch)) ++actions;
        if (!reg.find(id)) watches_.erase(id);
    }
    return actions;
}

}  // namespace nesgx::supervise
