/**
 * Failure-domain supervision (ISSUE 10 tentpole): a deterministic,
 * sim-clock-driven health supervisor over one TenantService.
 *
 * The supervisor is a pure observer until something wedges. Each
 * explicit tick() — benches and the CLI drive it between serving
 * rounds, there is no hidden thread — samples every tenant's liveness
 * from counters the serving stack already maintains:
 *
 *   progress  = TenantHandle::okServed (verified-ok completions)
 *   activity  = queued admission depth, a wedged switchless channel,
 *               a crashed gateway marker, or a degraded-host marker
 *
 * A tenant with activity but no progress for `wedgeTicks` consecutive
 * ticks is flagged *wedged* (SuperviseWedge, detection latency =
 * now - last progress). A wedged tenant then climbs a typed escalation
 * ladder, one rung per `rungPatience` ticks without recovery:
 *
 *   Kick           disarm the switchless channel; the next dispatch
 *                  re-arms a fresh one (cures poller wedges)
 *   TenantRebuild  destroy + rebuild the tenant's inner
 *   SubtreeRebuild destroy + rebuild the whole gateway subtree
 *                  (cures crashed gateways; clears the crash marker)
 *   Evacuate       live-migrate the tenant away — to another gateway,
 *                  or (fleet-attached) to another host entirely
 *
 * The entry rung is chosen by the wedge reason: a crashed gateway
 * starts at SubtreeRebuild, a degraded host goes straight to Evacuate
 * (rebuilding on a dying host is wasted work; the control plane stays
 * up precisely so tenants can leave). Every rung bumps the tenant's
 * placement epoch through the machinery it invokes, so epoch-fenced
 * clients are redirected instead of talking to a stale placement.
 *
 * Determinism: ticks read the sim clock, never wall time; all actions
 * run synchronously inside tick(). A service that never constructs a
 * Supervisor executes byte-identical traces to the pre-supervision
 * stack.
 */
#pragma once

#include <cstdint>
#include <map>

#include "migrate/engine.h"
#include "serve/histogram.h"
#include "serve/service.h"

namespace nesgx::supervise {

/** Why a tenant was flagged wedged (SuperviseWedge arg1). */
enum class WedgeReason : std::uint8_t {
    None = 0,
    NoProgress = 1,    ///< queued work, no verified completions
    RingWedged = 2,    ///< switchless poller stopped draining
    GatewayDown = 3,   ///< gateway crash marker set
    HostDegraded = 4,  ///< whole-host degrade marker set
};

const char* wedgeReasonName(WedgeReason r);

/** Escalation ladder rungs (SuperviseEscalate arg1). Ordered: the
 *  supervisor only ever climbs. */
enum class Rung : std::uint8_t {
    Healthy = 0,
    Kick = 1,
    TenantRebuild = 2,
    SubtreeRebuild = 3,
    Evacuate = 4,
};

const char* rungName(Rung r);

struct Config {
    /** Consecutive no-progress-with-activity ticks before a tenant is
     *  flagged wedged. */
    std::uint64_t wedgeTicks = 2;
    /** Ticks a rung's action gets to restore progress before the
     *  supervisor climbs to the next rung. */
    std::uint64_t rungPatience = 2;
};

struct SupervisorStats {
    std::uint64_t ticks = 0;
    std::uint64_t wedges = 0;           ///< tenants flagged wedged
    std::uint64_t kicks = 0;            ///< switchless channel kicks
    std::uint64_t tenantRebuilds = 0;   ///< ladder-initiated rebuilds
    std::uint64_t subtreeRebuilds = 0;  ///< ladder-initiated subtree rebuilds
    std::uint64_t evacuations = 0;      ///< committed evacuations
    std::uint64_t evacuationFailures = 0;
    std::uint64_t recoveries = 0;       ///< wedged tenants that recovered
    /** Cycles from last progress to the wedge flag. */
    serve::Histogram detectionLatency;
    /** Cycles per committed evacuation. */
    serve::Histogram evacuationLatency;
    /** Cycles from wedge flag to the first post-wedge progress. */
    serve::Histogram recoveryLatency;
};

class Supervisor {
  public:
    Supervisor(serve::TenantService& svc, Config config = {});

    /** Enables the Evacuate rung within this host: wedged tenants are
     *  live-migrated to another gateway. Not owned. */
    void attachEngine(migrate::MigrationEngine& engine);

    /** Enables cross-host evacuation: wedged tenants on this host
     *  (fleet index `hostIndex`) are migrated to another fleet host —
     *  the only rung that can save tenants of a degraded host. */
    void attachFleet(migrate::Fleet& fleet, migrate::MigrationEngine& engine,
                     std::size_t hostIndex);

    /**
     * One supervision pass over every tenant of the service: sample
     * liveness, flag new wedges, run/escalate ladder actions for
     * already-wedged tenants. Returns the number of recovery actions
     * taken (0 = pure observation).
     */
    std::size_t tick();

    const SupervisorStats& stats() const { return stats_; }

  private:
    /** Per-tenant watchdog state. */
    struct Watch {
        std::uint64_t lastOkServed = 0;
        std::uint64_t lastProgressCycles = 0;
        std::uint64_t lastSeenCycles = 0;
        std::uint64_t staleTicks = 0;
        bool wedged = false;
        std::uint64_t wedgedAtCycles = 0;
        WedgeReason reason = WedgeReason::None;
        Rung rung = Rung::Healthy;
        std::uint64_t rungTicks = 0;
    };

    sgx::Machine& machine();
    WedgeReason classify(const serve::TenantHandle& tenant,
                         std::size_t queued) const;
    Rung entryRung(WedgeReason reason) const;
    /** Runs one rung's recovery action; true when the action was
     *  attempted (regardless of whether it succeeded). */
    bool act(serve::TenantHandle& tenant, Watch& watch);
    bool evacuate(serve::TenantHandle& tenant, Watch& watch);

    serve::TenantService* svc_;
    Config config_;
    migrate::MigrationEngine* engine_ = nullptr;
    migrate::Fleet* fleet_ = nullptr;
    std::size_t hostIndex_ = 0;
    SupervisorStats stats_;
    std::map<serve::TenantId, Watch> watches_;
};

}  // namespace nesgx::supervise
