#include "ssl/minissl.h"

#include <cstring>

namespace nesgx::ssl {

Bytes
frame(FrameType type, ByteView payload)
{
    Bytes out(kFrameHeader + payload.size());
    out[0] = std::uint8_t(type);
    storeLe32(out.data() + 1, std::uint32_t(payload.size()));
    std::memcpy(out.data() + kFrameHeader, payload.data(), payload.size());
    return out;
}

bool
parseFrame(ByteView wire, FrameType& type, ByteView& payload)
{
    if (wire.size() < kFrameHeader) return false;
    std::uint32_t len = loadLe32(wire.data() + 1);
    if (wire.size() < kFrameHeader + len) return false;
    type = FrameType(wire[0]);
    payload = ByteView(wire.data() + kFrameHeader, len);
    return true;
}

Bytes
makeHeartbeatRequest(std::uint16_t claimedLen, ByteView payload)
{
    // Heartbeat body: [claimed length u16 LE][payload...].
    Bytes body(2 + payload.size());
    body[0] = std::uint8_t(claimedLen);
    body[1] = std::uint8_t(claimedLen >> 8);
    std::memcpy(body.data() + 2, payload.data(), payload.size());
    return frame(FrameType::Heartbeat, body);
}

MiniSsl::MiniSsl(ByteView key) : gcm_(key) {}

Result<hw::Vaddr>
MiniSsl::stageRecord(sdk::TrustedEnv& env, ByteView wire)
{
    // OpenSSL-style: records are staged into a heap buffer of at least
    // the default record-buffer size. The allocator recycles freed
    // blocks *without scrubbing*, so bytes beyond wire.size() are stale
    // heap contents.
    hw::Vaddr buf = env.alloc(
        std::max<std::uint64_t>(kRecordBufferSize, wire.size()));
    if (buf == 0) return Err::OutOfMemory;
    Status st = env.writeBytes(buf, wire);
    if (!st) {
        env.free(buf);
        return st;
    }
    return buf;
}

Result<Bytes>
MiniSsl::sslWrite(sdk::TrustedEnv& env, ByteView plaintext)
{
    Bytes iv(crypto::kGcmIvSize, 0);
    storeLe64(iv.data(), sendSeq_);
    Bytes aad(8);
    storeLe64(aad.data(), sendSeq_);
    ++sendSeq_;

    // Stage the outgoing record through the heap like a real record layer.
    auto buf = stageRecord(env, plaintext);
    if (!buf) return buf.status();

    Bytes sealed = gcm_.seal(iv, aad, plaintext);
    env.chargeGcm(plaintext.size());
    env.free(buf.value());
    ++recordsProcessed_;
    return frame(FrameType::Data, sealed);
}

Result<Bytes>
MiniSsl::sslRead(sdk::TrustedEnv& env, ByteView wire)
{
    FrameType type;
    ByteView payload;
    if (!parseFrame(wire, type, payload) || type != FrameType::Data) {
        return Err::BadCallBuffer;
    }

    auto buf = stageRecord(env, payload);
    if (!buf) return buf.status();
    auto staged = env.readBytes(buf.value(), payload.size());
    if (!staged) {
        env.free(buf.value());
        return staged.status();
    }

    Bytes iv(crypto::kGcmIvSize, 0);
    storeLe64(iv.data(), recvSeq_);
    Bytes aad(8);
    storeLe64(aad.data(), recvSeq_);
    auto plain = gcm_.open(iv, aad, staged.value());
    env.chargeGcm(payload.size());
    env.free(buf.value());
    if (!plain) return plain.status();
    ++recvSeq_;
    ++recordsProcessed_;
    return plain;
}

Result<Bytes>
MiniSsl::handleHeartbeat(sdk::TrustedEnv& env, ByteView wire)
{
    FrameType type;
    ByteView payload;
    if (!parseFrame(wire, type, payload) || type != FrameType::Heartbeat ||
        payload.size() < 2) {
        return Err::BadCallBuffer;
    }

    auto buf = stageRecord(env, payload);
    if (!buf) return buf.status();

    // Read the *claimed* payload length from the attacker's message.
    auto lenBytes = env.readBytes(buf.value(), 2);
    if (!lenBytes) {
        env.free(buf.value());
        return lenBytes.status();
    }
    std::uint16_t claimed =
        std::uint16_t(lenBytes.value()[0] | (lenBytes.value()[1] << 8));

    // VULNERABLE (CVE-2014-0160): no comparison of `claimed` against the
    // actual received length. The response copies `claimed` bytes from
    // the record buffer, exposing stale recycled-heap contents.
    auto echoed = env.readBytes(buf.value() + 2, claimed);
    env.free(buf.value());
    if (!echoed) return echoed.status();

    ++heartbeatsProcessed_;
    return frame(FrameType::Heartbeat, echoed.value());
}

}  // namespace nesgx::ssl
