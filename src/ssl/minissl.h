/**
 * minissl — a miniature TLS-like library standing in for SGX-OpenSSL in
 * the confinement case study (paper §VI-A).
 *
 * It provides a record layer (AES-GCM protected frames), a handshake
 * (see handshake.h) and the SSL heartbeat extension. The heartbeat
 * handler deliberately re-implements the *missing bounds check* of
 * CVE-2014-0160 (HeartBleed): the attacker-controlled payload length is
 * trusted, so the response copies stale bytes out of the record buffer —
 * which the allocator recycles from previously freed blocks.
 *
 * All buffers live in the *enclave heap of whichever enclave hosts the
 * library* and are accessed through the validated memory path. Hosting
 * minissl in the same enclave as the application (monolithic SGX)
 * exposes application secrets to the overread; hosting it in the outer
 * enclave (nested) confines the overread to the outer heap, and the
 * inner enclave's secrets stay unreachable.
 */
#pragma once

#include <memory>

#include "crypto/gcm.h"
#include "sdk/runtime.h"

namespace nesgx::ssl {

/** Wire frame types. */
enum class FrameType : std::uint8_t {
    Data = 0x17,       ///< application record
    Heartbeat = 0x18,  ///< heartbeat request
};

/** Frame header: [type u8][length u32 LE]. */
constexpr std::size_t kFrameHeader = 5;

/** Fixed record-buffer size, as OpenSSL reuses large record buffers. */
constexpr std::uint64_t kRecordBufferSize = 4096;

/** Builds a wire frame around a payload. */
Bytes frame(FrameType type, ByteView payload);

/** Parses a frame header; returns false on malformed input. */
bool parseFrame(ByteView wire, FrameType& type, ByteView& payload);

/** Builds a heartbeat request with an attacker-chosen claimed length. */
Bytes makeHeartbeatRequest(std::uint16_t claimedLen, ByteView payload);

class MiniSsl {
  public:
    /** @param key session record key (from the handshake). */
    explicit MiniSsl(ByteView key);

    /**
     * Protects a plaintext as an outgoing data frame (software AES-GCM,
     * cycle-charged).
     */
    Result<Bytes> sslWrite(sdk::TrustedEnv& env, ByteView plaintext);

    /**
     * Opens an incoming data frame. The wire bytes are first staged into
     * a heap record buffer (allocated from the hosting enclave's heap,
     * hence subject to recycling), then verified and decrypted.
     */
    Result<Bytes> sslRead(sdk::TrustedEnv& env, ByteView wire);

    /**
     * Heartbeat processing — the vulnerable path. The response echoes
     * `claimedLen` bytes starting at the payload offset of the record
     * buffer, with no check against the actual received length
     * (CVE-2014-0160). Whatever the recycled buffer held beyond the
     * request leaks into the response.
     */
    Result<Bytes> handleHeartbeat(sdk::TrustedEnv& env, ByteView wire);

    std::uint64_t recordsProcessed() const { return recordsProcessed_; }
    std::uint64_t heartbeatsProcessed() const { return heartbeatsProcessed_; }

  private:
    /** Stages wire bytes into a (recycled) heap record buffer. */
    Result<hw::Vaddr> stageRecord(sdk::TrustedEnv& env, ByteView wire);

    crypto::AesGcm gcm_;
    std::uint64_t sendSeq_ = 0;
    std::uint64_t recvSeq_ = 0;
    std::uint64_t recordsProcessed_ = 0;
    std::uint64_t heartbeatsProcessed_ = 0;
};

}  // namespace nesgx::ssl
