#include "ssl/handshake.h"

#include <algorithm>

namespace nesgx::ssl {

namespace {

constexpr std::size_t kNonceSize = 16;

Bytes
deriveSessionKey(ByteView psk, std::uint16_t version, ByteView clientNonce,
                 ByteView serverNonce)
{
    Bytes ctx;
    ctx.push_back(std::uint8_t(version));
    ctx.push_back(std::uint8_t(version >> 8));
    append(ctx, clientNonce);
    append(ctx, serverNonce);
    auto full = crypto::hmacSha256(psk, ctx);
    return Bytes(full.begin(), full.begin() + 16);
}

Bytes
transcriptMac(ByteView psk, ByteView clientHello, std::uint16_t version,
              ByteView serverNonce)
{
    Bytes transcript(clientHello.begin(), clientHello.end());
    transcript.push_back(std::uint8_t(version));
    transcript.push_back(std::uint8_t(version >> 8));
    append(transcript, serverNonce);
    auto mac = crypto::hmacSha256(psk, transcript);
    return Bytes(mac.begin(), mac.end());
}

}  // namespace

Bytes
ClientHello::serialize() const
{
    Bytes out;
    out.push_back(std::uint8_t(offeredVersions.size()));
    for (std::uint16_t v : offeredVersions) {
        out.push_back(std::uint8_t(v));
        out.push_back(std::uint8_t(v >> 8));
    }
    append(out, nonce);
    return out;
}

std::optional<ClientHello>
ClientHello::parse(ByteView wire)
{
    if (wire.empty()) return std::nullopt;
    std::size_t count = wire[0];
    if (wire.size() != 1 + 2 * count + kNonceSize || count == 0) {
        return std::nullopt;
    }
    ClientHello hello;
    for (std::size_t i = 0; i < count; ++i) {
        hello.offeredVersions.push_back(
            std::uint16_t(wire[1 + 2 * i] | (wire[2 + 2 * i] << 8)));
    }
    hello.nonce = Bytes(wire.begin() + 1 + 2 * count, wire.end());
    return hello;
}

Bytes
ServerHello::serialize() const
{
    Bytes out;
    out.push_back(std::uint8_t(chosenVersion));
    out.push_back(std::uint8_t(chosenVersion >> 8));
    append(out, nonce);
    append(out, transcriptMac);
    return out;
}

std::optional<ServerHello>
ServerHello::parse(ByteView wire)
{
    if (wire.size() != 2 + kNonceSize + 32) return std::nullopt;
    ServerHello hello;
    hello.chosenVersion = std::uint16_t(wire[0] | (wire[1] << 8));
    hello.nonce = Bytes(wire.begin() + 2, wire.begin() + 2 + kNonceSize);
    hello.transcriptMac = Bytes(wire.begin() + 2 + kNonceSize, wire.end());
    return hello;
}

HandshakeServer::HandshakeServer(ByteView psk, std::uint64_t rngSeed)
    : psk_(psk.begin(), psk.end()), rng_(rngSeed)
{
}

Result<Bytes>
HandshakeServer::respond(ByteView clientHelloWire)
{
    auto hello = ClientHello::parse(clientHelloWire);
    if (!hello) return Err::BadCallBuffer;

    // Pick the highest version both sides support.
    std::uint16_t chosen = 0;
    for (std::uint16_t v : hello->offeredVersions) {
        if ((v == kVersionTls13 || v == kVersionTls12) && v > chosen) {
            chosen = v;
        }
    }
    if (chosen == 0) return Err::BadCallBuffer;

    ServerHello response;
    response.chosenVersion = chosen;
    response.nonce = rng_.bytes(kNonceSize);
    response.transcriptMac =
        transcriptMac(psk_, clientHelloWire, chosen, response.nonce);

    result_ = HandshakeResult{
        chosen, deriveSessionKey(psk_, chosen, hello->nonce, response.nonce)};
    return response.serialize();
}

HandshakeClient::HandshakeClient(ByteView psk, std::uint64_t rngSeed)
    : psk_(psk.begin(), psk.end()), rng_(rngSeed)
{
}

Bytes
HandshakeClient::hello()
{
    ClientHello hello;
    hello.offeredVersions = {kVersionTls13, kVersionTls12};
    hello.nonce = rng_.bytes(kNonceSize);
    sentHello_ = hello.serialize();
    return sentHello_;
}

Result<HandshakeResult>
HandshakeClient::finish(ByteView serverHelloWire)
{
    auto hello = ServerHello::parse(serverHelloWire);
    if (!hello) return Err::BadCallBuffer;

    // The transcript MAC covers the *offered* versions; a rollback of the
    // chosen version (or a rewritten offer) fails here.
    Bytes expected = transcriptMac(psk_, sentHello_, hello->chosenVersion,
                                   hello->nonce);
    if (!constantTimeEqual(expected, hello->transcriptMac)) {
        return Err::ReportMacMismatch;
    }

    auto parsed = ClientHello::parse(sentHello_);
    return HandshakeResult{
        hello->chosenVersion,
        deriveSessionKey(psk_, hello->chosenVersion, parsed->nonce,
                         hello->nonce)};
}

}  // namespace nesgx::ssl
