/**
 * minissl handshake: a minimal authenticated key agreement with
 * anti-rollback, standing in for the "rich security features of the
 * standard SSL such as the secure handshake protocol to prevent the
 * version rollback or the cipher suite rollback attack" (paper §VI-A).
 *
 * Both sides hold a pre-shared authentication secret (the paper's echo
 * server assumes key distribution). The session key is derived from both
 * nonces and the negotiated version; a MAC over the full transcript makes
 * downgrade of the version/cipher offer detectable.
 */
#pragma once

#include <optional>

#include "crypto/hmac.h"
#include "support/bytes.h"
#include "support/rng.h"
#include "support/status.h"

namespace nesgx::ssl {

constexpr std::uint16_t kVersionTls12 = 0x0303;
constexpr std::uint16_t kVersionTls13 = 0x0304;

/** ClientHello: offered versions (highest first) + client nonce. */
struct ClientHello {
    std::vector<std::uint16_t> offeredVersions;
    Bytes nonce;  // 16 bytes

    Bytes serialize() const;
    static std::optional<ClientHello> parse(ByteView wire);
};

/** ServerHello: chosen version + server nonce + transcript MAC. */
struct ServerHello {
    std::uint16_t chosenVersion = 0;
    Bytes nonce;  // 16 bytes
    Bytes transcriptMac;  // HMAC(psk, hello || serverhello-body)

    Bytes serialize() const;
    static std::optional<ServerHello> parse(ByteView wire);
};

/** Result of a completed handshake. */
struct HandshakeResult {
    std::uint16_t version = 0;
    Bytes sessionKey;  // 16 bytes, feeds MiniSsl
};

class HandshakeServer {
  public:
    HandshakeServer(ByteView psk, std::uint64_t rngSeed = 1);

    /** Processes a ClientHello; picks the highest mutual version. */
    Result<Bytes> respond(ByteView clientHelloWire);

    /** Session material once respond() succeeded. */
    const std::optional<HandshakeResult>& result() const { return result_; }

  private:
    Bytes psk_;
    Rng rng_;
    std::optional<HandshakeResult> result_;
};

class HandshakeClient {
  public:
    HandshakeClient(ByteView psk, std::uint64_t rngSeed = 2);

    /** Produces the ClientHello offering TLS 1.3 then 1.2. */
    Bytes hello();

    /**
     * Verifies the ServerHello transcript MAC — this is where a
     * version-rollback tamper by the network/OS is caught.
     */
    Result<HandshakeResult> finish(ByteView serverHelloWire);

  private:
    Bytes psk_;
    Rng rng_;
    Bytes sentHello_;
};

}  // namespace nesgx::ssl
