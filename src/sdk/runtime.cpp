#include "sdk/runtime.h"

#include <algorithm>

#include "sgx/chain.h"

namespace nesgx::sdk {

namespace {

/** SDK boundary events: built only when a sink listens. The call name is
 *  borrowed (`text` is not owned) — valid for the duration of the call,
 *  which is all a synchronous publish needs. */
inline void
publishSdk(sgx::Machine& machine, trace::EventKind kind, hw::CoreId core,
           const char* name)
{
    trace::TraceBus& bus = machine.trace();
    if (!bus.active()) return;
    trace::TraceEvent event;
    event.kind = kind;
    event.core = core;
    event.text = name;
    bus.publish(event);
}

}  // namespace

// ---------------------------------------------------------------- TrustedEnv

sgx::Machine&
TrustedEnv::machine()
{
    return urts_.machine();
}

Result<Bytes>
TrustedEnv::readBytes(hw::Vaddr va, std::uint64_t len)
{
    Bytes out(len);
    Status st = machine().read(core_, va, out.data(), len);
    if (!st) return st;
    return out;
}

Status
TrustedEnv::writeBytes(hw::Vaddr va, ByteView data)
{
    return machine().write(core_, va, data.data(), data.size());
}

Result<std::uint64_t>
TrustedEnv::readU64(hw::Vaddr va)
{
    std::uint8_t buf[8];
    Status st = machine().read(core_, va, buf, 8);
    if (!st) return st;
    return loadLe64(buf);
}

Status
TrustedEnv::writeU64(hw::Vaddr va, std::uint64_t v)
{
    std::uint8_t buf[8];
    storeLe64(buf, v);
    return machine().write(core_, va, buf, 8);
}

Result<Bytes>
TrustedEnv::ocall(const std::string& name, ByteView arg)
{
    auto it = urts_.ocalls_.find(name);
    if (it == urts_.ocalls_.end()) return Err::NoSuchCall;

    // Switchless first: an armed relay serves the call over shared
    // rings with zero transitions. It declines (before any side
    // effect) when this enclave has no armed channel.
    if (urts_.ocallRelay_) {
        if (auto relayed = urts_.ocallRelay_->relayOcall(enclave_, core_, name,
                                                         it->second, arg)) {
            ++urts_.stats_.ocalls;
            return std::move(*relayed);
        }
    }

    sgx::Machine& m = machine();
    // The model restricts synchronous EEXIT to depth 1; the SDK routes
    // inner-enclave ocalls through the outer (use nOcall + outer ocall).
    if (m.core(core_).depth() != 1) return Err::GeneralProtection;
    hw::Paddr tcs = m.core(core_).currentTcs();

    m.charge(m.costs().ocallDispatch);
    m.charge(m.costs().copyBytes(arg.size()));
    ++urts_.stats_.ocalls;
    publishSdk(m, trace::EventKind::SdkOcallBegin, core_, name.c_str());

    Status st = m.eexit(core_);
    if (!st) {
        publishSdk(m, trace::EventKind::SdkOcallEnd, core_, name.c_str());
        return st;
    }
    Result<Bytes> result = it->second(arg);
    Status back = m.eenter(core_, tcs);
    publishSdk(m, trace::EventKind::SdkOcallEnd, core_, name.c_str());
    if (!back) return back;
    if (result) m.charge(m.costs().copyBytes(result.value().size()));
    return result;
}

Result<Bytes>
TrustedEnv::nEcall(LoadedEnclave& inner, const std::string& name, ByteView arg)
{
    const TrustedFn* fn = inner.image().spec.interface->findNEcall(name);
    if (!fn) return Err::NoSuchCall;
    auto tcs = urts_.idleTcs(inner);
    if (!tcs) return tcs.status();

    sgx::Machine& m = machine();
    m.charge(m.costs().nEcallDispatch);
    // Arguments pass by reference through the shared outer enclave
    // memory: no marshalling copy and no software encryption — the
    // data-path (LLC/MEE) cost is charged when the callee touches the
    // bytes (paper §IV-A).
    ++urts_.stats_.nEcalls;
    urts_.kernel_.touchEnclave(inner.secsPage_);
    publishSdk(m, trace::EventKind::SdkNEcallBegin, core_, name.c_str());

    Status st = m.neenter(core_, tcs.value());
    if (!st) {
        publishSdk(m, trace::EventKind::SdkNEcallEnd, core_, name.c_str());
        return st;
    }
    TrustedEnv innerEnv(urts_, inner, core_);
    Result<Bytes> result = (*fn)(innerEnv, arg);
    Status back = m.neexit(core_);
    publishSdk(m, trace::EventKind::SdkNEcallEnd, core_, name.c_str());
    if (!back) return back;
    return result;
}

Result<Bytes>
TrustedEnv::nEcallChain(const std::vector<LoadedEnclave*>& remaining,
                        const std::string& name, ByteView arg)
{
    if (remaining.empty()) return Err::GeneralProtection;
    if (remaining.size() == 1) return nEcall(*remaining[0], name, arg);

    // Pass-through hop: NEENTER the next link and recurse. The named
    // function only runs at the leaf; intermediate enclaves are
    // traversed, each paying its own dispatch + NEENTER/NEEXIT cost.
    LoadedEnclave& next = *remaining[0];
    auto tcs = urts_.idleTcs(next);
    if (!tcs) return tcs.status();

    sgx::Machine& m = machine();
    m.charge(m.costs().nEcallDispatch);
    ++urts_.stats_.nEcalls;
    urts_.kernel_.touchEnclave(next.secsPage_);
    publishSdk(m, trace::EventKind::SdkNEcallBegin, core_, name.c_str());

    Status st = m.neenter(core_, tcs.value());
    if (!st) {
        publishSdk(m, trace::EventKind::SdkNEcallEnd, core_, name.c_str());
        return st;
    }
    TrustedEnv nextEnv(urts_, next, core_);
    Result<Bytes> result = nextEnv.nEcallChain(
        std::vector<LoadedEnclave*>(remaining.begin() + 1, remaining.end()),
        name, arg);
    Status back = m.neexit(core_);
    publishSdk(m, trace::EventKind::SdkNEcallEnd, core_, name.c_str());
    if (!back) return back;
    return result;
}

Result<Bytes>
TrustedEnv::nOcall(const std::string& name, ByteView arg)
{
    sgx::Machine& m = machine();
    // NEEXIT returns to the outer frame we were NEENTERed from — under
    // the multi-outer extension that may be any of our outers, so the
    // target enclave is resolved from the frame stack, not statically.
    if (m.core(core_).depth() < 2) return Err::GeneralProtection;
    const auto& frames = m.core(core_).frames();
    LoadedEnclave* outer =
        urts_.enclaveBySecs(frames[frames.size() - 2].secs);
    if (!outer) return Err::GeneralProtection;
    const TrustedFn* fn =
        outer->image().spec.interface->findNOcallTarget(name);
    if (!fn) return Err::NoSuchCall;

    hw::Paddr innerTcs = m.core(core_).currentTcs();

    m.charge(m.costs().nOcallDispatch);
    // As with n_ecall: by-reference through the shared outer memory.
    ++urts_.stats_.nOcalls;
    publishSdk(m, trace::EventKind::SdkNOcallBegin, core_, name.c_str());

    Status st = m.neexit(core_);
    if (!st) {
        publishSdk(m, trace::EventKind::SdkNOcallEnd, core_, name.c_str());
        return st;
    }
    TrustedEnv outerEnv(urts_, *outer, core_);
    Result<Bytes> result = (*fn)(outerEnv, arg);
    Status back = m.neenter(core_, innerTcs);
    publishSdk(m, trace::EventKind::SdkNOcallEnd, core_, name.c_str());
    if (!back) return back;
    return result;
}

Result<Bytes>
TrustedEnv::residentCall(const std::string& name, ByteView arg)
{
    sgx::Machine& m = machine();
    // The core must genuinely be resident in this enclave: the parked
    // poller entered once via the classic leaves at arming time and has
    // stayed inside since. Anything else is a protocol violation.
    if (m.core(core_).currentSecs() != enclave_.secsPage_) {
        return Err::GeneralProtection;
    }
    const TrustedFn* fn = enclave_.image().spec.interface->findNEcall(name);
    if (!fn) fn = enclave_.image().spec.interface->findEcall(name);
    if (!fn) return Err::NoSuchCall;

    m.charge(m.costs().nEcallDispatch);
    urts_.kernel_.touchEnclave(enclave_.secsPage_);
    publishSdk(m, trace::EventKind::SdkNEcallBegin, core_, name.c_str());
    Result<Bytes> result = (*fn)(*this, arg);
    publishSdk(m, trace::EventKind::SdkNEcallEnd, core_, name.c_str());
    return result;
}

Result<sgx::Report>
TrustedEnv::getReport(const sgx::TargetInfo& target,
                      const sgx::ReportData& data)
{
    return machine().ereport(core_, target, data);
}

Result<sgx::NestedReport>
TrustedEnv::getNestedReport(const sgx::TargetInfo& target,
                            const sgx::ReportData& data)
{
    return machine().nereport(core_, target, data);
}

Result<crypto::Sha256Digest>
TrustedEnv::getSealKey()
{
    return machine().egetkeySeal(core_);
}

Result<crypto::Sha256Digest>
TrustedEnv::getSealKeyIdentity()
{
    return machine().egetkeySealIdentity(core_);
}

void
TrustedEnv::chargeCycles(std::uint64_t cycles)
{
    machine().charge(cycles);
}

void
TrustedEnv::chargeGcm(std::uint64_t bytes)
{
    machine().charge(machine().costs().gcmMessage(bytes));
}

// ----------------------------------------------------------------------- Urts

Urts::Urts(os::Kernel& kernel, os::Pid pid) : kernel_(kernel), pid_(pid) {}

hw::Vaddr
Urts::nextBase(std::uint64_t sizeBytes)
{
    // ELRANGE must be naturally aligned to its (power-of-two) size.
    hw::Vaddr base = (nextEnclaveBase_ + sizeBytes - 1) & ~(sizeBytes - 1);
    nextEnclaveBase_ = base + sizeBytes;
    return base;
}

Result<LoadedEnclave*>
Urts::load(const SignedEnclave& image)
{
    std::lock_guard<std::mutex> g(structM_);
    auto enclave = std::make_unique<LoadedEnclave>();
    enclave->image_ = image;
    enclave->base_ = nextBase(image.sizeBytes);

    auto secs = kernel_.createEnclave(pid_, enclave->base_, image.sizeBytes,
                                      image.spec.attributes);
    if (!secs) return secs.status();
    enclave->secsPage_ = secs.value();

    const os::EnclaveRecord* recBefore =
        kernel_.enclaveRecord(enclave->secsPage_);
    (void)recBefore;
    for (const auto& page : image.pages) {
        Status st = kernel_.addPage(enclave->secsPage_,
                                    enclave->base_ + page.offset, page.type,
                                    page.perms, page.content);
        if (!st) {
            // Abandoning the half-built enclave would leak its SECS and
            // every page added so far: no handle ever maps them, so the
            // EPC pressure manager could never reclaim them.
            (void)kernel_.destroyEnclave(enclave->secsPage_);
            return st;
        }
        if (page.type == sgx::PageType::Tcs) {
            const os::EnclaveRecord* rec =
                kernel_.enclaveRecord(enclave->secsPage_);
            enclave->tcsPages_.push_back(
                rec->pages.at(enclave->base_ + page.offset));
        }
    }

    Status st = kernel_.initEnclave(enclave->secsPage_, image.sigstruct);
    if (!st) {
        (void)kernel_.destroyEnclave(enclave->secsPage_);
        return st;
    }

    enclave->heap_ =
        TrustedHeap(enclave->base_ + image.heapOffset, image.heapBytes);

    enclaves_.push_back(std::move(enclave));
    return enclaves_.back().get();
}

Status
Urts::unload(LoadedEnclave* enclave)
{
    std::lock_guard<std::mutex> g(structM_);
    Status st = kernel_.destroyEnclave(enclave->secsPage_);
    if (kernel_.enclaveRecord(enclave->secsPage_) != nullptr) {
        // The enclave survived (pages genuinely busy): the handle stays
        // valid and the caller may retry later.
        return st.isOk() ? Status(Err::OsError) : st;
    }
    // The enclave is gone — even if per-page teardown reported a
    // degraded status. The SECS frame returns to the free list and a
    // later load may reuse it: keeping the dead record would let
    // enclaveBySecs() resolve the old enclave and shadow the new one.
    // Unlink the association bookkeeping and drop the record entirely.
    if (enclave->outer_) {
        auto& siblings = enclave->outer_->inners_;
        siblings.erase(std::remove(siblings.begin(), siblings.end(), enclave),
                       siblings.end());
    }
    for (LoadedEnclave* inner : enclave->inners_) {
        if (inner->outer_ == enclave) inner->outer_ = nullptr;
    }
    for (auto it = enclaves_.begin(); it != enclaves_.end(); ++it) {
        if (it->get() == enclave) {
            enclaves_.erase(it);
            break;
        }
    }
    // Ok means exactly "the enclave is gone" — even when per-page
    // teardown reported a degraded status along the way.
    return Status::ok();
}

Status
Urts::associate(LoadedEnclave* inner, LoadedEnclave* outer)
{
    std::lock_guard<std::mutex> g(structM_);
    Status st = kernel_.associate(inner->secsPage_, outer->secsPage_);
    if (!st) return st;
    if (!inner->outer_) inner->outer_ = outer;  // primary
    outer->inners_.push_back(inner);
    return Status::ok();
}

LoadedEnclave*
Urts::enclaveBySecs(hw::Paddr secsPage)
{
    std::lock_guard<std::mutex> g(structM_);
    for (const auto& enclave : enclaves_) {
        if (enclave->secsPage_ == secsPage) return enclave.get();
    }
    return nullptr;
}

void
Urts::registerOcall(const std::string& name, UntrustedFn fn)
{
    ocalls_[name] = std::move(fn);
}

Result<hw::Paddr>
Urts::idleTcs(LoadedEnclave& enclave)
{
    for (hw::Paddr tcs : enclave.tcsPages_) {
        sgx::Tcs* t = machine().tcsAt(tcs);
        if (t && !t->busy) return tcs;
    }
    return Err::GeneralProtection;
}

Result<Bytes>
Urts::ecall(LoadedEnclave* enclave, const std::string& name, ByteView arg,
            hw::CoreId core)
{
    const EnclaveInterface& iface = *enclave->image().spec.interface;
    // Paper Fig. 5: untrusted code can EENTER an inner enclave directly,
    // so an n_ecall entry point is also reachable as a plain ecall.
    const TrustedFn* fn = iface.findEcall(name);
    if (!fn) fn = iface.findNEcall(name);
    if (!fn) return Err::NoSuchCall;

    auto tcs = idleTcs(*enclave);
    if (!tcs) return tcs.status();

    sgx::Machine& m = machine();
    m.charge(m.costs().ecallDispatch);
    // ecall arguments traverse untrusted memory into the enclave.
    m.charge(m.costs().copyBytes(arg.size()));
    ++stats_.ecalls;
    kernel_.touchEnclave(enclave->secsPage_);
    publishSdk(m, trace::EventKind::SdkEcallBegin, core, name.c_str());

    Status st = m.eenter(core, tcs.value());
    if (!st) {
        publishSdk(m, trace::EventKind::SdkEcallEnd, core, name.c_str());
        return st;
    }
    TrustedEnv env(*this, *enclave, core);
    Result<Bytes> result = (*fn)(env, arg);
    Status back = m.eexit(core);
    publishSdk(m, trace::EventKind::SdkEcallEnd, core, name.c_str());
    if (!back) return back;
    if (result) m.charge(m.costs().copyBytes(result.value().size()));
    return result;
}

Result<Bytes>
Urts::ecallNested(LoadedEnclave* outer, LoadedEnclave* inner,
                  const std::string& name, ByteView arg, hw::CoreId core)
{
    return ecallChain({outer, inner}, name, arg, core);
}

Result<Bytes>
Urts::ecallChain(const std::vector<LoadedEnclave*>& chain,
                 const std::string& name, ByteView arg, hw::CoreId core)
{
    if (chain.empty()) return Err::GeneralProtection;
    if (chain.size() == 1) return ecall(chain[0], name, arg, core);

    // Validate every hop against the hardware-recorded association
    // before any transition (any of a link's outers qualifies under
    // the multi-outer extension).
    for (std::size_t i = 1; i < chain.size(); ++i) {
        const sgx::Secs* innerSecs = machine().secsAt(chain[i]->secsPage_);
        if (!innerSecs ||
            !sgx::chainAdjacent(*innerSecs, chain[i - 1]->secsPage_)) {
            return Err::GeneralProtection;
        }
    }
    auto rootTcs = idleTcs(*chain[0]);
    if (!rootTcs) return rootTcs.status();

    sgx::Machine& m = machine();
    m.charge(m.costs().ecallDispatch);
    m.charge(m.costs().copyBytes(arg.size()));
    ++stats_.ecalls;
    for (LoadedEnclave* node : chain) kernel_.touchEnclave(node->secsPage_);
    publishSdk(m, trace::EventKind::SdkEcallBegin, core, name.c_str());

    Status st = m.eenter(core, rootTcs.value());
    if (!st) {
        publishSdk(m, trace::EventKind::SdkEcallEnd, core, name.c_str());
        return st;
    }
    TrustedEnv rootEnv(*this, *chain[0], core);
    Result<Bytes> result = rootEnv.nEcallChain(
        std::vector<LoadedEnclave*>(chain.begin() + 1, chain.end()), name,
        arg);
    Status back = m.eexit(core);
    publishSdk(m, trace::EventKind::SdkEcallEnd, core, name.c_str());
    if (!back) return back;
    return result;
}

std::vector<LoadedEnclave*>
Urts::chainTo(LoadedEnclave* leaf)
{
    std::lock_guard<std::mutex> g(structM_);
    std::vector<LoadedEnclave*> chain;
    // Bounded by the loaded-enclave count: a corrupted association
    // graph (cycle) terminates instead of spinning.
    for (LoadedEnclave* node = leaf;
         node && chain.size() <= enclaves_.size(); node = node->outer_) {
        chain.push_back(node);
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
}

Result<hw::Paddr>
Urts::debugTranslate(hw::Vaddr va, hw::CoreId core)
{
    return machine().translate(core, va, hw::Access::Read);
}

}  // namespace nesgx::sdk
