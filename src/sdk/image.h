/**
 * Enclave images and the signing toolchain.
 *
 * An EnclaveSpec describes an enclave the way the SGX SDK's build step
 * does: sizes of code/data/heap regions, thread count, the declared
 * interface, and — the nested-enclave extension — the expected peer
 * measurements that will be carried in the signed file (paper §IV-C).
 *
 * buildImage() lays the pages out, computes the exact MRENCLAVE the
 * hardware will measure at load, and signs the SIGSTRUCT with the author
 * key, producing a SignedEnclave loadable by the untrusted runtime.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "crypto/rsa.h"
#include "sdk/interface.h"
#include "sgx/secs.h"
#include "sgx/sigstruct.h"
#include "support/rng.h"

namespace nesgx::sdk {

struct EnclaveSpec {
    std::string name;
    std::uint64_t codePages = 16;
    std::uint64_t dataPages = 4;
    std::uint64_t heapPages = 64;
    std::uint64_t stackPages = 4;
    std::uint64_t tcsCount = 2;
    std::uint64_t attributes = 0;
    std::shared_ptr<EnclaveInterface> interface =
        std::make_shared<EnclaveInterface>();

    /** Expected outer enclave (set when this enclave is an inner). */
    std::optional<sgx::PeerExpectation> expectedOuter;
    /** Inner enclaves allowed to associate (set on outer enclaves). */
    std::vector<sgx::PeerExpectation> allowedInners;

    std::uint64_t totalPages() const
    {
        return tcsCount + codePages + dataPages + heapPages +
               stackPages * tcsCount;
    }
};

/** One page of the laid-out image. */
struct ImagePage {
    std::uint64_t offset = 0;  ///< page offset within ELRANGE
    sgx::PageType type = sgx::PageType::Reg;
    sgx::PagePerms perms;
    Bytes content;             ///< empty = zero page
};

struct SignedEnclave {
    EnclaveSpec spec;
    std::vector<ImagePage> pages;
    std::uint64_t sizeBytes = 0;       ///< ELRANGE size (power-of-2 padded)
    sgx::SigStruct sigstruct;
    sgx::Measurement mrenclave{};      ///< expected load-time measurement
    sgx::Measurement mrsigner{};

    /** Region offsets within ELRANGE (fixed layout). */
    std::uint64_t heapOffset = 0;
    std::uint64_t heapBytes = 0;
};

/**
 * Lays out, measures and signs an enclave image.
 *
 * Code pages carry deterministic pseudo-content derived from the enclave
 * name and interface (standing in for the compiled text section), so two
 * enclaves with different code have different MRENCLAVEs — the property
 * every attestation experiment relies on.
 */
SignedEnclave buildImage(const EnclaveSpec& spec,
                         const crypto::RsaKeyPair& authorKey);

/** Predicts MRENCLAVE for a spec without building (used by builders that
 *  need to embed a peer's measurement before the peer is built). */
sgx::Measurement predictMeasurement(const EnclaveSpec& spec);

}  // namespace nesgx::sdk
