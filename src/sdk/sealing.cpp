#include "sdk/sealing.h"

#include "crypto/gcm.h"

namespace nesgx::sdk {

namespace {

constexpr std::size_t kIvSize = crypto::kGcmIvSize;

Result<crypto::AesGcm>
sealCipher(TrustedEnv& env)
{
    auto key = env.getSealKey();
    if (!key) return key.status();
    return crypto::AesGcm(ByteView(key.value().data(), 16));
}

}  // namespace

Result<Bytes>
sealData(TrustedEnv& env, ByteView data)
{
    auto gcm = sealCipher(env);
    if (!gcm) return gcm.status();

    // IV derived from a per-call counter kept on the simulated clock —
    // unique within a machine lifetime (the clock is monotonic and every
    // EGETKEY above already advanced it).
    Bytes iv(kIvSize, 0);
    storeLe64(iv.data(), env.machine().clock().cycles());

    Bytes sealed = gcm.value().seal(iv, {}, data);
    env.chargeGcm(data.size());

    Bytes blob;
    append(blob, iv);
    append(blob, sealed);
    return blob;
}

Result<Bytes>
unsealData(TrustedEnv& env, ByteView blob)
{
    if (blob.size() < kIvSize + crypto::kGcmTagSize) {
        return Err::BadCallBuffer;
    }
    auto gcm = sealCipher(env);
    if (!gcm) return gcm.status();

    ByteView iv(blob.data(), kIvSize);
    ByteView sealed(blob.data() + kIvSize, blob.size() - kIvSize);
    auto plain = gcm.value().open(iv, {}, sealed);
    if (plain) env.chargeGcm(plain.value().size());
    return plain;
}

}  // namespace nesgx::sdk
