#include "sdk/heap.h"

namespace nesgx::sdk {

hw::Vaddr
TrustedHeap::alloc(std::uint64_t size)
{
    std::uint64_t rounded = roundUp(size == 0 ? 1 : size);

    // LIFO recycling: the most recently freed block of this size class is
    // handed out first (contents intact).
    auto it = freeLists_.find(rounded);
    if (it != freeLists_.end() && !it->second.empty()) {
        hw::Vaddr va = it->second.back();
        it->second.pop_back();
        allocated_[va] = rounded;
        inUse_ += rounded;
        return va;
    }

    if (brk_ + rounded > end_) return 0;
    hw::Vaddr va = brk_;
    brk_ += rounded;
    allocated_[va] = rounded;
    inUse_ += rounded;
    return va;
}

void
TrustedHeap::free(hw::Vaddr va)
{
    auto it = allocated_.find(va);
    if (it == allocated_.end()) return;
    freeLists_[it->second].push_back(va);
    inUse_ -= it->second;
    allocated_.erase(it);
}

std::uint64_t
TrustedHeap::blockSize(hw::Vaddr va) const
{
    auto it = allocated_.find(va);
    return it == allocated_.end() ? 0 : it->second;
}

}  // namespace nesgx::sdk
