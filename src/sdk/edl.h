/**
 * EDL (Enclave Definition Language) front-end.
 *
 * The paper extends Intel's EDL so a signed enclave declares, besides
 * the classic trusted/untrusted sections, the functions crossing the
 * *nested* boundaries (§IV-C): n_ecalls it exposes to its outer-side
 * callers and n_ocall services it provides to its inners. This parser
 * accepts that dialect:
 *
 *     enclave ssl_lib {
 *         trusted {
 *             public bytes handle(bytes);     // ecall entry points
 *         }
 *         nested_trusted {
 *             bytes decrypt(bytes);           // n_ecall entry points
 *         }
 *         nested_untrusted {
 *             bytes ssl_read(bytes);          // n_ocall targets served
 *         }
 *         untrusted {
 *             bytes net_recv(bytes);          // ocalls this enclave uses
 *         }
 *     }
 *
 * The declaration is *binding*: validateBinding() checks a registered
 * EnclaveInterface implements exactly the declared surface, and the EDL
 * text is folded into the enclave measurement, so a tampered interface
 * file changes MRENCLAVE. Note the OS cannot gain anything by forging an
 * EDL (paper §VII-B): calls between peer inner enclaves are refused by
 * the *hardware* regardless of what any interface file claims — see
 * tests/test_edl.cpp.
 */
#pragma once

#include <string>
#include <vector>

#include "sdk/interface.h"
#include "support/status.h"

namespace nesgx::sdk {

/** Which boundary a declared function crosses. */
enum class EdlSection {
    Trusted,          ///< ecall: untrusted -> this enclave
    NestedTrusted,    ///< n_ecall: outer -> this (inner) enclave
    NestedUntrusted,  ///< n_ocall target: this (outer) serves its inners
    Untrusted,        ///< ocall: this enclave -> untrusted host
};

struct EdlFunction {
    EdlSection section = EdlSection::Trusted;
    std::string name;
    bool isPublic = false;  ///< `public` keyword (root ecall), as in SGX
};

struct EdlSpec {
    std::string enclaveName;
    std::vector<EdlFunction> functions;

    const EdlFunction* find(EdlSection section,
                            const std::string& name) const;
    std::size_t count(EdlSection section) const;

    /** Canonical text form (used for measurement folding). */
    std::string canonical() const;
};

/** Parses EDL text; BadCallBuffer with no spec on syntax errors. */
Result<EdlSpec> parseEdl(const std::string& text);

/**
 * Checks that an EnclaveInterface implements exactly the declared
 * surface: every declared trusted/nested function is registered, and
 * nothing undeclared is exposed. (Declared `untrusted` imports are the
 * host's obligation and are not checked here.)
 */
Status validateBinding(const EdlSpec& spec, const EnclaveInterface& iface);

}  // namespace nesgx::sdk
