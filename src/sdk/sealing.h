/**
 * Sealed storage: encrypt enclave data for untrusted persistence, bound
 * to the author identity via the MRSIGNER-derived seal key (EGETKEY).
 * Any enclave by the same author on the same machine can unseal — the
 * standard SGX data-migration property.
 */
#pragma once

#include "sdk/runtime.h"

namespace nesgx::sdk {

/**
 * Seals `data` under the calling enclave's seal key. Output is a
 * self-contained blob (IV || ciphertext || tag) safe to hand to the OS.
 */
Result<Bytes> sealData(TrustedEnv& env, ByteView data);

/** Verifies and decrypts a sealed blob produced by sealData. */
Result<Bytes> unsealData(TrustedEnv& env, ByteView blob);

}  // namespace nesgx::sdk
