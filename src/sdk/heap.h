/**
 * Trusted in-enclave heap allocator.
 *
 * Allocates from the enclave's heap region (real EPC-backed emulated
 * memory). Free blocks are recycled LIFO and — deliberately, as in real
 * allocators — *not* scrubbed, which is precisely the behaviour the
 * HeartBleed case study (paper §VI-A) depends on: a freed buffer holding
 * secrets is re-used for an attacker-influenced allocation.
 */
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "hw/types.h"
#include "support/status.h"

namespace nesgx::sdk {

class TrustedHeap {
  public:
    TrustedHeap() = default;
    TrustedHeap(hw::Vaddr base, std::uint64_t size)
        : base_(base), end_(base + size), brk_(base)
    {
    }

    /** Allocates `size` bytes (16-byte granularity); 0 on exhaustion. */
    hw::Vaddr alloc(std::uint64_t size);

    /** Returns a block to the allocator; contents are left intact. */
    void free(hw::Vaddr va);

    /** Size originally requested for a live or recycled block. */
    std::uint64_t blockSize(hw::Vaddr va) const;

    std::uint64_t bytesInUse() const { return inUse_; }
    hw::Vaddr base() const { return base_; }

  private:
    static std::uint64_t roundUp(std::uint64_t v) { return (v + 15) & ~15ull; }

    hw::Vaddr base_ = 0;
    hw::Vaddr end_ = 0;
    hw::Vaddr brk_ = 0;
    std::uint64_t inUse_ = 0;
    std::map<hw::Vaddr, std::uint64_t> allocated_;  // va -> rounded size
    std::map<std::uint64_t, std::vector<hw::Vaddr>> freeLists_;
};

}  // namespace nesgx::sdk
