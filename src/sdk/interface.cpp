#include "sdk/interface.h"

namespace nesgx::sdk {

void
EnclaveInterface::addEcall(const std::string& name, TrustedFn fn)
{
    ecalls_[name] = std::move(fn);
}

void
EnclaveInterface::addNEcall(const std::string& name, TrustedFn fn)
{
    nEcalls_[name] = std::move(fn);
}

void
EnclaveInterface::addNOcallTarget(const std::string& name, TrustedFn fn)
{
    nOcallTargets_[name] = std::move(fn);
}

const TrustedFn*
EnclaveInterface::findEcall(const std::string& name) const
{
    auto it = ecalls_.find(name);
    return it == ecalls_.end() ? nullptr : &it->second;
}

const TrustedFn*
EnclaveInterface::findNEcall(const std::string& name) const
{
    auto it = nEcalls_.find(name);
    return it == nEcalls_.end() ? nullptr : &it->second;
}

const TrustedFn*
EnclaveInterface::findNOcallTarget(const std::string& name) const
{
    auto it = nOcallTargets_.find(name);
    return it == nOcallTargets_.end() ? nullptr : &it->second;
}

namespace {

template <typename Table>
std::vector<std::string>
keysOf(const Table& table)
{
    std::vector<std::string> out;
    out.reserve(table.size());
    for (const auto& [name, fn] : table) {
        (void)fn;
        out.push_back(name);
    }
    return out;
}

}  // namespace

std::vector<std::string>
EnclaveInterface::ecallNames() const
{
    return keysOf(ecalls_);
}

std::vector<std::string>
EnclaveInterface::nEcallNames() const
{
    return keysOf(nEcalls_);
}

std::vector<std::string>
EnclaveInterface::nOcallTargetNames() const
{
    return keysOf(nOcallTargets_);
}

Bytes
EnclaveInterface::interfaceDigestInput() const
{
    Bytes out;
    auto fold = [&out](const char* kind, const auto& table) {
        append(out, bytesOf(kind));
        for (const auto& [name, fn] : table) {
            (void)fn;
            append(out, bytesOf(name));
            out.push_back(0);
        }
    };
    fold("ecall:", ecalls_);
    fold("n_ecall:", nEcalls_);
    fold("n_ocall:", nOcallTargets_);
    return out;
}

}  // namespace nesgx::sdk
