/**
 * The nesgx runtimes.
 *
 * Urts (untrusted runtime) loads signed enclave images through the OS
 * driver, dispatches ecalls, serves ocalls, and wires nested enclaves
 * together (NASSO). TrustedEnv is the view a trusted function gets of its
 * enclave: validated memory access, the trusted heap, ocall/n_ecall/
 * n_ocall transitions, attestation, and work-cycle charging hooks for the
 * performance experiments.
 *
 * All transitions run the real machine leaves (EENTER/NEENTER/...), so
 * every call a case study makes pays the Table-II-calibrated cost and the
 * transition counters the figures report come from hardware-model stats.
 */
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "os/kernel.h"
#include "sdk/heap.h"
#include "sdk/image.h"
#include "sdk/interface.h"
#include "sgx/machine.h"
#include "support/counter.h"
#include "support/status.h"

namespace nesgx::sdk {

class Urts;
class LoadedEnclave;

/**
 * Hook the switchless layer implements to serve ocalls without an
 * enclave exit. When armed, TrustedEnv::ocall offers the call here
 * first; the relay ships the argument over shared-memory descriptor
 * rings and runs the untrusted function on a host core while the
 * enclave thread stays resident — zero EEXIT/EENTER transitions.
 */
class OcallRelay {
  public:
    virtual ~OcallRelay() = default;

    /**
     * Relays one ocall. Must return std::nullopt *before any side
     * effect* when the calling enclave has no armed relay channel —
     * the SDK then falls back to the classic EEXIT/EENTER path.
     */
    virtual std::optional<Result<Bytes>> relayOcall(LoadedEnclave& enclave,
                                                    hw::CoreId core,
                                                    const std::string& name,
                                                    const UntrustedFn& fn,
                                                    ByteView arg) = 0;
};

/** A loaded enclave instance. */
class LoadedEnclave {
  public:
    const std::string& name() const { return image_.spec.name; }
    hw::Paddr secsPage() const { return secsPage_; }
    hw::Vaddr base() const { return base_; }
    std::uint64_t size() const { return image_.sizeBytes; }
    const SignedEnclave& image() const { return image_; }
    const sgx::Measurement& mrenclave() const { return image_.mrenclave; }
    const sgx::Measurement& mrsigner() const { return image_.mrsigner; }
    TrustedHeap& heap() { return heap_; }

    /** The primary outer enclave this one nests inside, if associated. */
    LoadedEnclave* outer() const { return outer_; }

  private:
    friend class Urts;
    friend class TrustedEnv;

    SignedEnclave image_;
    hw::Paddr secsPage_ = 0;
    hw::Vaddr base_ = 0;
    std::vector<hw::Paddr> tcsPages_;
    TrustedHeap heap_;
    LoadedEnclave* outer_ = nullptr;
    std::vector<LoadedEnclave*> inners_;
};

/** Window a trusted function has onto its enclave world. */
class TrustedEnv {
  public:
    TrustedEnv(Urts& urts, LoadedEnclave& enclave, hw::CoreId core)
        : urts_(urts), enclave_(enclave), core_(core)
    {
    }

    LoadedEnclave& enclave() { return enclave_; }
    hw::CoreId core() const { return core_; }
    sgx::Machine& machine();

    // --- trusted heap ----------------------------------------------------
    /** Allocates in this enclave's heap; 0 when exhausted. */
    hw::Vaddr alloc(std::uint64_t size) { return enclave_.heap().alloc(size); }
    void free(hw::Vaddr va) { enclave_.heap().free(va); }

    // --- validated memory access (full Fig.-6 path) -----------------------
    Result<Bytes> readBytes(hw::Vaddr va, std::uint64_t len);
    Status writeBytes(hw::Vaddr va, ByteView data);
    Result<std::uint64_t> readU64(hw::Vaddr va);
    Status writeU64(hw::Vaddr va, std::uint64_t v);

    // --- transitions -------------------------------------------------------
    /** ocall: enclave -> untrusted function registered with the Urts. */
    Result<Bytes> ocall(const std::string& name, ByteView arg);

    /** n_ecall: outer -> inner enclave function (NEENTER/NEEXIT). */
    Result<Bytes> nEcall(LoadedEnclave& inner, const std::string& name,
                         ByteView arg);

    /**
     * Chain-routed n_ecall: NEENTERs each enclave in `remaining` in
     * order (pass-through hops), runs `name` in the last one, and
     * NEEXITs back symmetrically. A one-element chain is exactly
     * nEcall(). Every hop pays the n_ecall dispatch cost and publishes
     * its own SdkNEcallBegin/End bracket.
     */
    Result<Bytes> nEcallChain(const std::vector<LoadedEnclave*>& remaining,
                              const std::string& name, ByteView arg);

    /** n_ocall: inner -> outer enclave function (NEEXIT/NEENTER). */
    Result<Bytes> nOcall(const std::string& name, ByteView arg);

    /**
     * Switchless-path dispatch: invokes one of this enclave's n_ecall
     * entry points *without any transition* — the core must already be
     * resident in this enclave (a parked poller that NEENTERed once at
     * arming time). Pays the dispatch cost and publishes the usual
     * SdkNEcallBegin/End bracket, but no NEENTER/NEEXIT: that is the
     * entire point of the switchless layer.
     */
    Result<Bytes> residentCall(const std::string& name, ByteView arg);

    // --- attestation -------------------------------------------------------
    Result<sgx::Report> getReport(const sgx::TargetInfo& target,
                                  const sgx::ReportData& data);
    Result<sgx::NestedReport> getNestedReport(const sgx::TargetInfo& target,
                                              const sgx::ReportData& data);
    Result<crypto::Sha256Digest> getSealKey();
    /** MRENCLAVE+MRSIGNER-bound seal key (stable across rebuilds). */
    Result<crypto::Sha256Digest> getSealKeyIdentity();

    // --- modelling hooks ----------------------------------------------------
    /** Charges app compute work on the simulated clock. */
    void chargeCycles(std::uint64_t cycles);
    /** Charges a software AES-GCM pass over n bytes (cost model). */
    void chargeGcm(std::uint64_t bytes);

  private:
    Urts& urts_;
    LoadedEnclave& enclave_;
    hw::CoreId core_;
};

class Urts {
  public:
    struct CallStats {
        /** Relaxed atomics (support/counter.h): every worker thread's
         *  dispatch path bumps these concurrently in threaded mode. */
        Counter ecalls;
        Counter ocalls;
        Counter nEcalls;
        Counter nOcalls;
        std::uint64_t totalCalls() const
        {
            return ecalls + ocalls + nEcalls + nOcalls;
        }
    };

    /** @param kernel OS model; @param pid process hosting the enclaves. */
    Urts(os::Kernel& kernel, os::Pid pid);

    os::Kernel& kernel() { return kernel_; }
    sgx::Machine& machine() { return kernel_.machine(); }
    os::Pid pid() const { return pid_; }

    /**
     * Loads a signed enclave image: ECREATE, EADD+EEXTEND every page in
     * layout order, EINIT against the SIGSTRUCT. Returns the instance.
     */
    Result<LoadedEnclave*> load(const SignedEnclave& image);

    /** Unloads (EREMOVE) an enclave. */
    Status unload(LoadedEnclave* enclave);

    /** NASSO wrapper: associates inner with outer and links runtimes. */
    Status associate(LoadedEnclave* inner, LoadedEnclave* outer);

    /** Registers an untrusted function servable via ocall. */
    void registerOcall(const std::string& name, UntrustedFn fn);

    /** ecall into an enclave (EENTER -> dispatch -> EEXIT). */
    Result<Bytes> ecall(LoadedEnclave* enclave, const std::string& name,
                        ByteView arg, hw::CoreId core = 0);

    /**
     * Convenience for per-user inner calls: EENTER the outer enclave and
     * NEENTER the inner from there (ecall + n_ecall in one round trip).
     * Equivalent to ecallChain({outer, inner}, ...).
     */
    Result<Bytes> ecallNested(LoadedEnclave* outer, LoadedEnclave* inner,
                              const std::string& name, ByteView arg,
                              hw::CoreId core = 0);

    /**
     * Depth-parametric entry: routes a call down an ancestor chain
     * (root first, leaf last). Depth k costs one EENTER plus k-1
     * NEENTERs in, and the symmetric NEEXIT unwind plus one EEXIT out.
     * Every adjacent pair is validated against the hardware-recorded
     * association before any transition. A one-element chain is exactly
     * ecall(); a two-element chain is exactly ecallNested().
     */
    Result<Bytes> ecallChain(const std::vector<LoadedEnclave*>& chain,
                             const std::string& name, ByteView arg,
                             hw::CoreId core = 0);

    /**
     * The full ancestor chain of `leaf` along primary outers, root
     * first and `leaf` last — ready to hand to ecallChain().
     */
    std::vector<LoadedEnclave*> chainTo(LoadedEnclave* leaf);

    /**
     * Arms (or with nullptr disarms) the switchless ocall relay.
     * TrustedEnv::ocall offers every call to the relay first and falls
     * back to the classic EEXIT/EENTER path when it declines.
     */
    void setOcallRelay(OcallRelay* relay) { ocallRelay_ = relay; }

    const CallStats& stats() const { return stats_; }
    void resetStats() { stats_ = CallStats{}; }

    /** Untrusted-side view of an enclave VA's backing frame (for tests). */
    Result<hw::Paddr> debugTranslate(hw::Vaddr va, hw::CoreId core = 0);

    /** Loaded-enclave lookup by SECS physical address. */
    LoadedEnclave* enclaveBySecs(hw::Paddr secsPage);

    /**
     * First non-busy TCS of the enclave (GeneralProtection when every
     * thread slot is taken). Public so the switchless layer can park
     * poller threads on real TCSes without going through an ecall.
     */
    Result<hw::Paddr> idleTcs(LoadedEnclave& enclave);

  private:
    friend class TrustedEnv;

    Result<Bytes> dispatchTrusted(LoadedEnclave& enclave, const TrustedFn& fn,
                                  ByteView arg, hw::CoreId core);
    hw::Vaddr nextBase(std::uint64_t sizeBytes);

    os::Kernel& kernel_;
    os::Pid pid_;
    std::map<std::string, UntrustedFn> ocalls_;
    /**
     * Guards the loaded-enclave table (and the ELRANGE base allocator):
     * worker threads rebuild poisoned tenants — load/unload/associate —
     * while others dispatch. The dispatch path itself never takes this
     * lock; it works through the LoadedEnclave* it already holds, and
     * the serve layer's per-tenant ownership locks guarantee nobody
     * unloads an enclave that is mid-call. `ocalls_` stays setup-phase
     * single-threaded, like the spec builders.
     */
    mutable std::mutex structM_;
    std::vector<std::unique_ptr<LoadedEnclave>> enclaves_;
    hw::Vaddr nextEnclaveBase_ = 0x7000'0000'0000ull;
    CallStats stats_;
    OcallRelay* ocallRelay_ = nullptr;
};

}  // namespace nesgx::sdk
