/**
 * The EDL-equivalent of the nesgx SDK.
 *
 * An EnclaveInterface declares the functions crossing each protection
 * boundary, mirroring the paper's extended EDL (§IV-C):
 *   - ecall:   untrusted -> enclave        (as in SGX)
 *   - ocall:   enclave -> untrusted        (as in SGX)
 *   - n_ecall: outer enclave -> inner      (new)
 *   - n_ocall: inner enclave -> outer      (new)
 *
 * Trusted functions receive a TrustedEnv (their window onto the emulated
 * enclave world); untrusted functions receive raw bytes.
 */
#pragma once

#include <functional>
#include <map>
#include <string>

#include "support/bytes.h"
#include "support/status.h"

namespace nesgx::sdk {

class TrustedEnv;

/** A function exposed across a boundary: bytes in, bytes out. */
using TrustedFn = std::function<Result<Bytes>(TrustedEnv&, ByteView)>;
using UntrustedFn = std::function<Result<Bytes>(ByteView)>;

class EnclaveInterface {
  public:
    /** Registers an ecall entry point (callable from untrusted code). */
    void addEcall(const std::string& name, TrustedFn fn);

    /** Registers an n_ecall entry point (callable from the outer enclave,
     *  or from untrusted code when entered directly per paper Fig. 5). */
    void addNEcall(const std::string& name, TrustedFn fn);

    /** Registers an n_ocall target (this enclave serves its inners). */
    void addNOcallTarget(const std::string& name, TrustedFn fn);

    const TrustedFn* findEcall(const std::string& name) const;
    const TrustedFn* findNEcall(const std::string& name) const;
    const TrustedFn* findNOcallTarget(const std::string& name) const;

    /** Stable content digest folded into the enclave measurement, so the
     *  declared interface is part of the enclave identity. */
    Bytes interfaceDigestInput() const;

    std::size_t ecallCount() const { return ecalls_.size(); }

    /** Registered names per boundary (EDL binding validation). */
    std::vector<std::string> ecallNames() const;
    std::vector<std::string> nEcallNames() const;
    std::vector<std::string> nOcallTargetNames() const;

  private:
    std::map<std::string, TrustedFn> ecalls_;
    std::map<std::string, TrustedFn> nEcalls_;
    std::map<std::string, TrustedFn> nOcallTargets_;
};

}  // namespace nesgx::sdk
