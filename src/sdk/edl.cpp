#include "sdk/edl.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace nesgx::sdk {

namespace {

const char*
sectionKeyword(EdlSection section)
{
    switch (section) {
      case EdlSection::Trusted: return "trusted";
      case EdlSection::NestedTrusted: return "nested_trusted";
      case EdlSection::NestedUntrusted: return "nested_untrusted";
      case EdlSection::Untrusted: return "untrusted";
    }
    return "?";
}

/** Token stream: identifiers, punctuation; // comments skipped. */
class Lexer {
  public:
    explicit Lexer(const std::string& text) : text_(text) {}

    std::string next()
    {
        skipSpaceAndComments();
        if (pos_ >= text_.size()) return "";
        char c = text_[pos_];
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
            std::string word;
            while (pos_ < text_.size() &&
                   (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '_')) {
                word += text_[pos_++];
            }
            return word;
        }
        ++pos_;
        return std::string(1, c);
    }

    std::string peek()
    {
        std::size_t saved = pos_;
        std::string token = next();
        pos_ = saved;
        return token;
    }

    bool done()
    {
        skipSpaceAndComments();
        return pos_ >= text_.size();
    }

  private:
    void skipSpaceAndComments()
    {
        for (;;) {
            while (pos_ < text_.size() &&
                   std::isspace(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
            if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
                text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
                continue;
            }
            return;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

bool
isIdentifier(const std::string& token)
{
    if (token.empty()) return false;
    for (char c : token) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
            return false;
        }
    }
    return !std::isdigit(static_cast<unsigned char>(token[0]));
}

/** Parses one `[public] bytes name(bytes);` declaration. */
Result<EdlFunction>
parseFunction(Lexer& lex, EdlSection section)
{
    EdlFunction fn;
    fn.section = section;

    std::string token = lex.next();
    if (token == "public") {
        fn.isPublic = true;
        token = lex.next();
    }
    if (token != "bytes") return Err::BadCallBuffer;  // return type
    fn.name = lex.next();
    if (!isIdentifier(fn.name)) return Err::BadCallBuffer;
    if (lex.next() != "(") return Err::BadCallBuffer;
    if (lex.next() != "bytes") return Err::BadCallBuffer;  // arg type
    if (lex.next() != ")") return Err::BadCallBuffer;
    if (lex.next() != ";") return Err::BadCallBuffer;
    return fn;
}

}  // namespace

const EdlFunction*
EdlSpec::find(EdlSection section, const std::string& name) const
{
    for (const auto& fn : functions) {
        if (fn.section == section && fn.name == name) return &fn;
    }
    return nullptr;
}

std::size_t
EdlSpec::count(EdlSection section) const
{
    return std::size_t(std::count_if(
        functions.begin(), functions.end(),
        [section](const EdlFunction& fn) { return fn.section == section; }));
}

std::string
EdlSpec::canonical() const
{
    std::ostringstream out;
    out << "enclave " << enclaveName << " {\n";
    for (EdlSection section :
         {EdlSection::Trusted, EdlSection::NestedTrusted,
          EdlSection::NestedUntrusted, EdlSection::Untrusted}) {
        if (count(section) == 0) continue;
        out << "    " << sectionKeyword(section) << " {\n";
        // Canonical order: sorted by name within each section.
        std::vector<const EdlFunction*> sorted;
        for (const auto& fn : functions) {
            if (fn.section == section) sorted.push_back(&fn);
        }
        std::sort(sorted.begin(), sorted.end(),
                  [](const EdlFunction* a, const EdlFunction* b) {
                      return a->name < b->name;
                  });
        for (const EdlFunction* fn : sorted) {
            out << "        " << (fn->isPublic ? "public " : "")
                << "bytes " << fn->name << "(bytes);\n";
        }
        out << "    }\n";
    }
    out << "}\n";
    return out.str();
}

Result<EdlSpec>
parseEdl(const std::string& text)
{
    Lexer lex(text);
    EdlSpec spec;

    if (lex.next() != "enclave") return Err::BadCallBuffer;
    spec.enclaveName = lex.next();
    if (!isIdentifier(spec.enclaveName)) return Err::BadCallBuffer;
    if (lex.next() != "{") return Err::BadCallBuffer;

    while (!lex.done() && lex.peek() != "}") {
        std::string keyword = lex.next();
        EdlSection section;
        if (keyword == "trusted") {
            section = EdlSection::Trusted;
        } else if (keyword == "nested_trusted") {
            section = EdlSection::NestedTrusted;
        } else if (keyword == "nested_untrusted") {
            section = EdlSection::NestedUntrusted;
        } else if (keyword == "untrusted") {
            section = EdlSection::Untrusted;
        } else {
            return Err::BadCallBuffer;
        }
        if (lex.next() != "{") return Err::BadCallBuffer;
        while (!lex.done() && lex.peek() != "}") {
            auto fn = parseFunction(lex, section);
            if (!fn) return fn.status();
            // Duplicate declarations within a section are rejected.
            if (spec.find(section, fn.value().name)) {
                return Err::BadCallBuffer;
            }
            spec.functions.push_back(fn.value());
        }
        if (lex.next() != "}") return Err::BadCallBuffer;
    }
    if (lex.next() != "}") return Err::BadCallBuffer;
    if (!lex.done()) return Err::BadCallBuffer;
    return spec;
}

Status
validateBinding(const EdlSpec& spec, const EnclaveInterface& iface)
{
    // Every declared trusted/nested function must be registered...
    for (const auto& fn : spec.functions) {
        switch (fn.section) {
          case EdlSection::Trusted:
            if (!iface.findEcall(fn.name)) return Err::NoSuchCall;
            break;
          case EdlSection::NestedTrusted:
            if (!iface.findNEcall(fn.name)) return Err::NoSuchCall;
            break;
          case EdlSection::NestedUntrusted:
            if (!iface.findNOcallTarget(fn.name)) return Err::NoSuchCall;
            break;
          case EdlSection::Untrusted:
            break;  // host-side import, not the enclave's to implement
        }
    }
    // ...and nothing undeclared may be exposed.
    for (const auto& name : iface.ecallNames()) {
        if (!spec.find(EdlSection::Trusted, name)) return Err::BadCallBuffer;
    }
    for (const auto& name : iface.nEcallNames()) {
        if (!spec.find(EdlSection::NestedTrusted, name)) {
            return Err::BadCallBuffer;
        }
    }
    for (const auto& name : iface.nOcallTargetNames()) {
        if (!spec.find(EdlSection::NestedUntrusted, name)) {
            return Err::BadCallBuffer;
        }
    }
    return Status::ok();
}

}  // namespace nesgx::sdk
