#include "sdk/image.h"

#include "crypto/sha256.h"
#include "sgx/measurement.h"

namespace nesgx::sdk {

namespace {

std::uint64_t
roundUpPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v) p <<= 1;
    return p;
}

/** Deterministic stand-in for the compiled text section. */
Bytes
codePageContent(const EnclaveSpec& spec, std::uint64_t pageIndex)
{
    Bytes seedInput = bytesOf(spec.name);
    append(seedInput, spec.interface->interfaceDigestInput());
    std::uint8_t idx[8];
    storeLe64(idx, pageIndex);
    append(seedInput, ByteView(idx, 8));
    crypto::Sha256Digest seed = crypto::Sha256::hash(seedInput);

    Rng rng(loadLe64(seed.data()));
    return rng.bytes(hw::kPageSize);
}

std::vector<ImagePage>
layoutPages(const EnclaveSpec& spec, SignedEnclave* out)
{
    std::vector<ImagePage> pages;
    std::uint64_t offset = 0;

    // Fixed region order: TCS | code (rx) | data (rw) | heap (rw) | stacks.
    for (std::uint64_t i = 0; i < spec.tcsCount; ++i) {
        pages.push_back({offset, sgx::PageType::Tcs, {}, {}});
        offset += hw::kPageSize;
    }
    for (std::uint64_t i = 0; i < spec.codePages; ++i) {
        pages.push_back({offset, sgx::PageType::Reg, sgx::PagePerms::rx(),
                         codePageContent(spec, i)});
        offset += hw::kPageSize;
    }
    for (std::uint64_t i = 0; i < spec.dataPages; ++i) {
        pages.push_back({offset, sgx::PageType::Reg, sgx::PagePerms::rw(), {}});
        offset += hw::kPageSize;
    }
    if (out) {
        out->heapOffset = offset;
        out->heapBytes = spec.heapPages * hw::kPageSize;
    }
    for (std::uint64_t i = 0; i < spec.heapPages; ++i) {
        pages.push_back({offset, sgx::PageType::Reg, sgx::PagePerms::rw(), {}});
        offset += hw::kPageSize;
    }
    for (std::uint64_t i = 0; i < spec.stackPages * spec.tcsCount; ++i) {
        pages.push_back({offset, sgx::PageType::Reg, sgx::PagePerms::rw(), {}});
        offset += hw::kPageSize;
    }
    return pages;
}

sgx::Measurement
measureLayout(const EnclaveSpec& spec, const std::vector<ImagePage>& pages,
              std::uint64_t sizeBytes)
{
    // Mirrors exactly what ECREATE/EADD/EEXTEND will fold at load time.
    sgx::MeasurementLog log;
    log.recordCreate(sizeBytes);
    Bytes zeroPage(hw::kPageSize, 0);
    for (const auto& page : pages) {
        log.recordAdd(page.offset, page.type, page.perms);
        const Bytes& content = page.content.empty() ? zeroPage : page.content;
        for (std::uint64_t off = 0; off < hw::kPageSize;
             off += sgx::kMeasureChunk) {
            log.recordExtend(page.offset + off,
                             ByteView(content.data() + off,
                                      sgx::kMeasureChunk));
        }
    }
    return log.finalize();
}

}  // namespace

sgx::Measurement
predictMeasurement(const EnclaveSpec& spec)
{
    std::uint64_t sizeBytes =
        roundUpPow2(spec.totalPages() * hw::kPageSize);
    auto pages = layoutPages(spec, nullptr);
    return measureLayout(spec, pages, sizeBytes);
}

SignedEnclave
buildImage(const EnclaveSpec& spec, const crypto::RsaKeyPair& authorKey)
{
    SignedEnclave out;
    out.spec = spec;
    out.sizeBytes = roundUpPow2(spec.totalPages() * hw::kPageSize);
    out.pages = layoutPages(spec, &out);
    out.mrenclave = measureLayout(spec, out.pages, out.sizeBytes);

    out.sigstruct.enclaveHash = out.mrenclave;
    out.sigstruct.attributes = spec.attributes;
    out.sigstruct.expectedOuter = spec.expectedOuter;
    out.sigstruct.allowedInners = spec.allowedInners;
    out.sigstruct.sign(authorKey);
    out.mrsigner = out.sigstruct.signerMeasurement();
    return out;
}

}  // namespace nesgx::sdk
